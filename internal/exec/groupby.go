package exec

import (
	"fmt"
	"sort"

	"gbmqo/internal/colset"
	"gbmqo/internal/index"
	"gbmqo/internal/table"
)

// GroupByHash computes SELECT groupCols, aggs FROM t GROUP BY groupCols with
// an open-addressing hash aggregate over dictionary-code tuples. Key codes
// are read through the table's row-major scan image, so the scan pays for the
// table's full width like the row store the paper ran on (see
// table.RowImage). It is the ungoverned convenience form of GroupByHashGov
// (background context, no budget); a malformed request panics, preserving
// the historical contract for tests and tools.
func GroupByHash(t *table.Table, groupCols []int, aggs []Agg, outName string) *table.Table {
	out, err := GroupByHashGov(nil, t, groupCols, aggs, outName)
	if err != nil {
		panic(err)
	}
	return out
}

// GroupByHashGov is the governed hash aggregate: it validates the request,
// polls gov's context every cancelCheckRows rows, and charges its hash-table
// slots plus accumulator state against gov's memory budget for the duration
// of the operator. A nil gov means ungoverned and adds no overhead.
func GroupByHashGov(gov *Gov, t *table.Table, groupCols []int, aggs []Agg, outName string) (*table.Table, error) {
	out, _, err := groupByHashSized(gov, t, groupCols, aggs, outName, 0)
	return out, err
}

// groupByHashSized is the hash-aggregate core behind GroupByHashGov and the
// adaptive dispatch. sizeHint, when > 0, presizes the group table for that
// many expected groups (satellite fix: the table no longer always starts at
// 1024 buckets when statistics already predict the NDV); the stats record how
// many rehash doublings the presize avoided.
func groupByHashSized(gov *Gov, t *table.Table, groupCols []int, aggs []Agg, outName string, sizeHint int) (*table.Table, KernelStats, error) {
	ks := KernelStats{Kind: KernelHash, Workers: 1}
	if err := validateRequest(t, groupCols, aggs); err != nil {
		return nil, ks, err
	}
	n := t.NumRows()
	image, stride := t.RowImage()
	rd := rowReader{image: image, stride: stride, offs: make([]int, len(groupCols)), seed: hashSeed.Load()}
	for i, c := range groupCols {
		rd.offs[i] = 4 * c
	}
	budget := gov.Budget()
	ht := newGroupHashSized(rd, budget, sizeHint)
	defer func() { budget.Release(ht.charged) }()
	accs := make([]accumulator, len(aggs))
	for i, a := range aggs {
		accs[i] = newAccumulator(a, t)
	}
	firstRows := make([]int32, 0, 1024)
	for row := 0; row < n; row++ {
		if row&(cancelCheckRows-1) == 0 {
			Testing.Fire("exec.hash.batch")
			if err := gov.Err(); err != nil {
				return nil, ks, err
			}
		}
		g, isNew := ht.groupOf(row)
		if isNew {
			firstRows = append(firstRows, int32(row))
		}
		for _, acc := range accs {
			acc.observe(g, row)
		}
	}
	accBytes := accStateBytes(len(firstRows), len(accs))
	budget.Add(accBytes)
	defer budget.Release(accBytes)
	ks.Groups = len(firstRows)
	ks.RehashesAvoided = ht.rehashesAvoided()
	return emitGroups(t, groupCols, aggs, accs, firstRows, nil, outName), ks, nil
}

// GroupBySort computes the same result by sorting row ids and streaming over
// runs. It exists for the shared-sort emulation of the commercial GROUPING
// SETS baseline and for operator cross-checking in tests. Output rows are in
// key-sorted order (contrast GroupBySortGov, which restores first-appearance
// order for hash-path interchangeability).
func GroupBySort(t *table.Table, groupCols []int, aggs []Agg, outName string) *table.Table {
	ix := index.Build(t, "tmp_sort", groupCols, false)
	return GroupByIndexStream(t, ix, groupCols, aggs, outName)
}

// GroupBySortGov is the governed sort-based aggregate and the engine's
// low-memory fallback when a hash aggregate would exceed the memory budget
// (sort-based group-by degrades gracefully: its working state is the
// O(rows) permutation, independent of how many groups the key produces,
// where a hash table grows with NDV). Rows are sorted by the full grouping
// key and streamed run by run, then groups are emitted in global
// first-appearance order — the index sort breaks key ties by row id, so each
// run's first row is the group's first occurrence — making the output
// byte-identical to GroupByHashGov for order-insensitive aggregates
// (SUM/AVG over TFloat64 may round differently because the observation
// order changes, exactly like the morsel-parallel path).
func GroupBySortGov(gov *Gov, t *table.Table, groupCols []int, aggs []Agg, outName string) (*table.Table, error) {
	if err := validateRequest(t, groupCols, aggs); err != nil {
		return nil, err
	}
	if len(groupCols) == 0 {
		// A single global group carries O(1) hash state; nothing to spill.
		return GroupByHashGov(gov, t, nil, aggs, outName)
	}
	budget := gov.Budget()
	sortBytes := int64(t.NumRows()) * 8 // permutation + group bounds
	budget.Add(sortBytes)
	defer budget.Release(sortBytes)
	if err := gov.Err(); err != nil { // poll before the O(n log n) sort
		return nil, err
	}
	ix := index.Build(t, "tmp_sort", groupCols, false)
	perm, bounds := ix.Perm(), ix.Bounds()
	nGroups := ix.NumGroups()
	accs := make([]accumulator, len(aggs))
	for i, a := range aggs {
		accs[i] = newAccumulator(a, t)
	}
	firstRows := make([]int32, nGroups)
	rowsDone := 0
	for g := 0; g < nGroups; g++ {
		firstRows[g] = perm[bounds[g]] // stable sort: min row of the group
		for p := bounds[g]; p < bounds[g+1]; p++ {
			if rowsDone&(cancelCheckRows-1) == 0 {
				Testing.Fire("exec.sort.stream")
				if err := gov.Err(); err != nil {
					return nil, err
				}
			}
			rowsDone++
			for _, acc := range accs {
				acc.observe(g, int(perm[p]))
			}
		}
	}
	accBytes := accStateBytes(nGroups, len(accs))
	budget.Add(accBytes)
	defer budget.Release(accBytes)
	order := make([]int, nGroups)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return firstRows[order[a]] < firstRows[order[b]] })
	return emitGroups(t, groupCols, aggs, accs, firstRows, order, outName), nil
}

// GroupByIndexStream computes the group-by by walking an index whose key has
// groupCols as a prefix (in order): rows arrive clustered by group, so a
// boundary scan replaces the hash table. Panics when the index does not cover
// groupCols as a prefix — the planner must not choose this path otherwise.
func GroupByIndexStream(t *table.Table, ix *index.Index, groupCols []int, aggs []Agg, outName string) *table.Table {
	out, err := GroupByIndexStreamGov(nil, t, ix, groupCols, aggs, outName)
	if err != nil {
		panic(err)
	}
	return out
}

// GroupByIndexStreamGov is the governed index-stream aggregate; it polls
// gov's context every cancelCheckRows rows. A non-prefix index remains a
// panic: the planner choosing this path for an incompatible index is a
// genuine invariant violation, caught at the ExecutePlan recovery boundary.
func GroupByIndexStreamGov(gov *Gov, t *table.Table, ix *index.Index, groupCols []int, aggs []Agg, outName string) (*table.Table, error) {
	set := setOf(groupCols)
	if ix.PrefixLen(set) == 0 {
		panic(fmt.Sprintf("exec: index %s does not prefix-cover %v", ix.Name(), groupCols))
	}
	if err := validateRequest(t, groupCols, aggs); err != nil {
		return nil, err
	}
	codes := make([][]uint32, len(groupCols))
	for i, c := range groupCols {
		codes[i] = t.Col(c).Codes()
	}
	accs := make([]accumulator, len(aggs))
	for i, a := range aggs {
		accs[i] = newAccumulator(a, t)
	}
	perm := ix.Perm()
	var firstRows []int32
	g := -1
	for pi, row := range perm {
		if pi&(cancelCheckRows-1) == 0 {
			Testing.Fire("exec.sort.stream")
			if err := gov.Err(); err != nil {
				return nil, err
			}
		}
		newGroup := pi == 0
		if !newGroup {
			prev := perm[pi-1]
			for _, col := range codes {
				if col[row] != col[prev] {
					newGroup = true
					break
				}
			}
		}
		if newGroup {
			g++
			firstRows = append(firstRows, row)
		}
		for _, acc := range accs {
			acc.observe(g, int(row))
		}
	}
	return emitGroups(t, groupCols, aggs, accs, firstRows, nil, outName), nil
}

// validateRequest rejects malformed group-by requests — out-of-range group
// or aggregate source columns — with a returned error instead of a panic, so
// a bad plan degrades into a failed query rather than a crashed process.
func validateRequest(t *table.Table, groupCols []int, aggs []Agg) error {
	for _, c := range groupCols {
		if c < 0 || c >= t.NumCols() {
			return fmt.Errorf("exec: group column %d out of range for table %q (%d cols)", c, t.Name(), t.NumCols())
		}
	}
	for _, a := range aggs {
		if a.Kind != AggCountStar && (a.Col < 0 || a.Col >= t.NumCols()) {
			return fmt.Errorf("exec: aggregate %q source column %d out of range for table %q (%d cols)", a.Name, a.Col, t.Name(), t.NumCols())
		}
	}
	return nil
}

// accStateBytes approximates the accumulator memory of a finished
// aggregation (counts, sums, seen flags — roughly 16 bytes per group per
// aggregate), charged transiently against the budget so PeakMem reflects
// aggregation state, not just hash-table slots.
func accStateBytes(groups, naccs int) int64 {
	return int64(groups) * 16 * int64(naccs)
}

// GroupByIndexCounts is the exact-match fast path: a COUNT(*) Group By on
// precisely the index key reads group sizes straight off the boundaries in
// O(#groups) — the §6.9 effect where building an index on a dense column
// (e.g. l_comment) collapses its Group By cost.
func GroupByIndexCounts(t *table.Table, ix *index.Index, outName string) *table.Table {
	groupCols := ix.Cols()
	perm, bounds := ix.Perm(), ix.Bounds()
	nGroups := ix.NumGroups()
	cols := make([]*table.Column, 0, len(groupCols)+1)
	for _, c := range groupCols {
		cols = append(cols, t.Col(c).EmptyLike(t.Col(c).Name()))
	}
	cnt := table.NewColumn(table.ColumnDef{Name: "cnt", Typ: table.TInt64})
	for g := 0; g < nGroups; g++ {
		first := int(perm[bounds[g]])
		for i, c := range groupCols {
			cols[i].AppendCode(t.Col(c).Code(first))
		}
		cnt.Append(table.Int(int64(bounds[g+1] - bounds[g])))
	}
	cols = append(cols, cnt)
	return table.FromColumns(outName, cols)
}

// GroupByIndexPrefixCounts is the prefix-match fast path for COUNT(*): a
// Group By on a proper key prefix walks the index's full-key group
// boundaries — O(#full-key groups), touching only group-start rows — summing
// run lengths whenever the prefix codes repeat. This models reading the
// index's leaf level instead of the base table, the §6.9 benefit of
// non-clustered indexes.
func GroupByIndexPrefixCounts(t *table.Table, ix *index.Index, prefixCols []int, outName string) *table.Table {
	set := setOf(prefixCols)
	k := ix.PrefixLen(set)
	if k == 0 {
		panic(fmt.Sprintf("exec: index %s does not prefix-cover %v", ix.Name(), prefixCols))
	}
	codes := make([][]uint32, len(prefixCols))
	for i, c := range prefixCols {
		codes[i] = t.Col(c).Codes()
	}
	perm, bounds := ix.Perm(), ix.Bounds()
	cols := make([]*table.Column, 0, len(prefixCols)+1)
	for _, c := range prefixCols {
		cols = append(cols, t.Col(c).EmptyLike(t.Col(c).Name()))
	}
	cnt := table.NewColumn(table.ColumnDef{Name: "cnt", Typ: table.TInt64})
	run := int64(0)
	var prevStart int32 = -1
	flush := func() {
		if prevStart < 0 {
			return
		}
		for i, col := range codes {
			cols[i].AppendCode(col[prevStart])
		}
		cnt.Append(table.Int(run))
	}
	for g := 0; g < ix.NumGroups(); g++ {
		start := perm[bounds[g]]
		newGroup := prevStart < 0
		if !newGroup {
			for _, col := range codes {
				if col[start] != col[prevStart] {
					newGroup = true
					break
				}
			}
		}
		if newGroup {
			flush()
			prevStart = start
			run = 0
		}
		run += int64(bounds[g+1] - bounds[g])
	}
	flush()
	cols = append(cols, cnt)
	return table.FromColumns(outName, cols)
}

// emitGroups assembles the output table: group key columns share the input's
// dictionaries; aggregate columns are fresh. order, when non-nil, is a
// permutation of group ids giving the output row order (the parallel merge
// uses it to restore global first-appearance order); nil emits groups in id
// order.
func emitGroups(t *table.Table, groupCols []int, aggs []Agg, accs []accumulator, firstRows []int32, order []int, outName string) *table.Table {
	nGroups := len(firstRows)
	cols := make([]*table.Column, 0, len(groupCols)+len(aggs))
	for _, c := range groupCols {
		src := t.Col(c)
		srcCodes := src.Codes()
		out := src.EmptyLike(src.Name())
		codes := make([]uint32, nGroups)
		if order == nil {
			for i, row := range firstRows {
				codes[i] = srcCodes[row]
			}
		} else {
			for i, g := range order {
				codes[i] = srcCodes[firstRows[g]]
			}
		}
		out.AppendCodes(codes)
		cols = append(cols, out)
	}
	for i, a := range aggs {
		out := table.NewColumn(table.ColumnDef{Name: a.Name, Typ: accs[i].outType()})
		for k := 0; k < nGroups; k++ {
			g := k
			if order != nil {
				g = order[k]
			}
			out.Append(accs[i].result(g))
		}
		cols = append(cols, out)
	}
	return table.FromColumns(outName, cols)
}

// rowReader extracts key-column codes from a table's row-major scan image.
type rowReader struct {
	image  []byte
	stride int
	offs   []int // byte offsets of the key columns within one row
	// seed perturbs hashRow; operators snapshot the process seed here at
	// construction (zero — e.g. in tests building a bare rowReader —
	// reproduces the historical fixed-constant hash).
	seed uint64
}

// code reads key column k of row r.
func (rd rowReader) code(r int, k int) uint32 {
	p := r*rd.stride + rd.offs[k]
	return uint32(rd.image[p]) | uint32(rd.image[p+1])<<8 |
		uint32(rd.image[p+2])<<16 | uint32(rd.image[p+3])<<24
}

// groupHash is an open-addressing hash table mapping code tuples to dense
// group ids. It stores per-slot (hash, groupID, firstRow) and verifies
// candidate matches against a representative row's codes, so keys are never
// copied.
type groupHash struct {
	rd        rowReader
	mask      uint64
	slotHash  []uint64
	slotGroup []int32 // group+1; 0 = empty
	slotRow   []int32
	groups    int

	// budget, when non-nil, is charged for slot memory as the table grows;
	// charged is the running total the owner releases when the operator
	// finishes.
	budget  *MemBudget
	charged int64

	// initSize is the slot count the table was created with, kept so
	// rehashesAvoided can compare against the growth path a default-sized
	// table would have walked.
	initSize int
}

// slotBytes is the per-slot memory of a groupHash (hash 8 + group 4 + row 4).
const slotBytes = 16

// groupHashInitSize is the starting slot count of a groupHash. Tables start
// small — a low-NDV aggregation over millions of rows never allocates more
// than a few KB — and grow by doubling when the load factor passes 3/4.
// (Pre-sizing to 2×rows made a 6M-row scan with 10 groups allocate ~16M slots
// per query; across a shared scan that was hundreds of MB of dead memory.)
const groupHashInitSize = 1024

// groupHashMaxPresize caps how many slots an NDV estimate may preallocate: a
// wildly high estimate must not turn into a giant dead allocation.
const groupHashMaxPresize = 1 << 22

func newGroupHash(rd rowReader, budget *MemBudget) *groupHash {
	return newGroupHashSized(rd, budget, 0)
}

// newGroupHashSized creates a group table presized for sizeHint expected
// groups (0 means the default groupHashInitSize). The initial slot count is
// the smallest power of two keeping sizeHint groups under the 3/4 load
// factor, clamped by groupHashMaxPresize and halved until the budget admits
// it — a tight budget degrades the presize back toward the default rather
// than failing admission.
func newGroupHashSized(rd rowReader, budget *MemBudget, sizeHint int) *groupHash {
	size := groupHashInitSize
	if sizeHint > 0 {
		for size < groupHashMaxPresize && uint64(sizeHint+1)*4 > uint64(size)*3 {
			size <<= 1
		}
		for size > groupHashInitSize && budget.WouldExceed(int64(size)*slotBytes) {
			size >>= 1
		}
	}
	h := &groupHash{
		rd:        rd,
		mask:      uint64(size - 1),
		slotHash:  make([]uint64, size),
		slotGroup: make([]int32, size),
		slotRow:   make([]int32, size),
		budget:    budget,
		initSize:  size,
	}
	h.charge(int64(size) * slotBytes)
	return h
}

// rehashesAvoided reports how many grow() doublings the presize saved: the
// doublings a default-sized table would have needed to reach the smaller of
// (a) the presized start and (b) the size the final group count actually
// required. A presize larger than the data needed does not inflate the count.
func (h *groupHash) rehashesAvoided() int {
	needed := groupHashInitSize
	for uint64(h.groups+1)*4 > uint64(needed)*3 {
		needed <<= 1
	}
	saved := h.initSize
	if needed < saved {
		saved = needed
	}
	n := 0
	for s := groupHashInitSize; s < saved; s <<= 1 {
		n++
	}
	return n
}

// charge accounts n bytes of slot memory against the budget.
func (h *groupHash) charge(n int64) {
	if h.budget == nil {
		return
	}
	h.budget.Add(n)
	h.charged += n
}

// groupOf returns the dense group id for the key tuple at row, allocating a
// new group on first sight.
func (h *groupHash) groupOf(row int) (g int, isNew bool) {
	if uint64(h.groups+1)*4 > (h.mask+1)*3 {
		h.grow()
	}
	hash := hashRow(h.rd, row)
	slot := hash & h.mask
	for {
		sg := h.slotGroup[slot]
		if sg == 0 {
			h.slotHash[slot] = hash
			h.slotRow[slot] = int32(row)
			h.groups++
			h.slotGroup[slot] = int32(h.groups)
			return h.groups - 1, true
		}
		if h.slotHash[slot] == hash && h.rowsEqual(h.slotRow[slot], int32(row)) {
			return int(sg - 1), false
		}
		slot = (slot + 1) & h.mask
	}
}

// grow doubles the slot arrays and redistributes occupied slots using their
// stored hashes (keys are never re-read from the table).
func (h *groupHash) grow() {
	oldHash, oldGroup, oldRow := h.slotHash, h.slotGroup, h.slotRow
	size := (int(h.mask) + 1) << 1
	h.charge(int64(size-len(oldGroup)) * slotBytes)
	h.mask = uint64(size - 1)
	h.slotHash = make([]uint64, size)
	h.slotGroup = make([]int32, size)
	h.slotRow = make([]int32, size)
	for i, sg := range oldGroup {
		if sg == 0 {
			continue
		}
		slot := oldHash[i] & h.mask
		for h.slotGroup[slot] != 0 {
			slot = (slot + 1) & h.mask
		}
		h.slotHash[slot] = oldHash[i]
		h.slotGroup[slot] = sg
		h.slotRow[slot] = oldRow[i]
	}
}

func (h *groupHash) rowsEqual(a, b int32) bool {
	for k := range h.rd.offs {
		if h.rd.code(int(a), k) != h.rd.code(int(b), k) {
			return false
		}
	}
	return true
}

// hashRow mixes the code tuple of one row with a splitmix-style finalizer,
// perturbed by the reader's seed so hash layouts differ across processes.
func hashRow(rd rowReader, row int) uint64 {
	h := 0x9e3779b97f4a7c15 ^ rd.seed
	for k := range rd.offs {
		h ^= uint64(rd.code(row, k)) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
	}
	// Final avalanche so empty tuples and single columns spread too.
	h ^= h >> 31
	h *= 0x94d049bb133111eb
	h ^= h >> 29
	if h == 0 {
		h = 1
	}
	return h
}

func setOf(cols []int) colset.Set { return colset.Of(cols...) }
