package exec

import (
	"math/rand"
	"testing"

	"gbmqo/internal/table"
)

func TestMergeable(t *testing.T) {
	if !Mergeable([]Agg{CountStar(), {Kind: AggSum, Col: 1, Name: "s"},
		{Kind: AggMin, Col: 1, Name: "mn"}, {Kind: AggMax, Col: 1, Name: "mx"},
		{Kind: AggCount, Col: 1, Name: "c"}}) {
		t.Fatal("COUNT/SUM/MIN/MAX should be mergeable")
	}
	if Mergeable([]Agg{CountStar(), {Kind: AggAvg, Col: 1, Name: "a"}}) {
		t.Fatal("AVG is not mergeable")
	}
}

// mergeFixture builds a random base+delta table pair via the real append
// path (shared, extended dictionaries) over mixed column types, with nulls.
func mergeFixture(t *testing.T, rng *rand.Rand, baseRows, deltaRows int) *table.Table {
	t.Helper()
	tb := table.New("m", []table.ColumnDef{
		{Name: "k1", Typ: table.TString},
		{Name: "k2", Typ: table.TInt64},
		{Name: "vi", Typ: table.TInt64},
		{Name: "vf", Typ: table.TFloat64},
		{Name: "vs", Typ: table.TString},
		{Name: "vd", Typ: table.TDate},
	})
	row := func() []table.Value {
		keys := []string{"a", "b", "c", "d", "e"}
		r := []table.Value{
			table.Str(keys[rng.Intn(len(keys))]),
			table.Int(int64(rng.Intn(4))),
			table.Int(int64(rng.Intn(100) - 50)),
			table.Float(float64(rng.Intn(100)) / 4),
			table.Str(keys[rng.Intn(len(keys))] + "x"),
			table.Date(int64(rng.Intn(300))),
		}
		for i := 1; i < len(r); i++ {
			if rng.Intn(8) == 0 {
				r[i] = table.Null(r[i].Typ)
			}
		}
		return r
	}
	for i := 0; i < baseRows; i++ {
		tb.AppendRow(row()...)
	}
	delta := make([][]table.Value, deltaRows)
	for i := range delta {
		delta[i] = row()
	}
	return tb.Append(delta)
}

// TestMergeAppendedGroupsDifferential is the merge kernel's core invariant:
// aggregate the base segment, aggregate the delta segment, merge — the result
// must be byte-identical (values, column layout, row order) to aggregating
// the whole table cold, across every mergeable aggregate and null patterns.
func TestMergeAppendedGroupsDifferential(t *testing.T) {
	aggSets := [][]Agg{
		{CountStar()},
		{CountStar(), {Kind: AggSum, Col: 2, Name: "sum_vi"}},
		{{Kind: AggSum, Col: 3, Name: "sum_vf"}, {Kind: AggCount, Col: 4, Name: "cnt_vs"}},
		{{Kind: AggMin, Col: 2, Name: "min_vi"}, {Kind: AggMax, Col: 2, Name: "max_vi"}},
		{{Kind: AggMin, Col: 4, Name: "min_vs"}, {Kind: AggMax, Col: 4, Name: "max_vs"}},
		{{Kind: AggMin, Col: 5, Name: "min_vd"}, {Kind: AggMax, Col: 5, Name: "max_vd"},
			{Kind: AggSum, Col: 2, Name: "sum_vi"}, CountStar()},
	}
	groupings := [][]int{{0}, {1}, {0, 1}}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		full := mergeFixture(t, rng, 40+rng.Intn(80), 1+rng.Intn(40))
		base := prefixView(full, full.DeltaStart())
		delta := full.DeltaView()
		for _, cols := range groupings {
			for _, aggs := range aggSets {
				cold := GroupByHash(full, cols, aggs, "out")
				cached := GroupByHash(base, cols, aggs, "out")
				deltaAgg := GroupByHash(delta, cols, aggs, "out__d")
				merged, err := MergeAppendedGroups(cached, deltaAgg, len(cols), aggs, "out")
				if err != nil {
					t.Fatalf("trial %d cols %v: %v", trial, cols, err)
				}
				assertIdentical(t, merged, cold)
			}
		}
	}
}

// prefixView is the first n rows of t as a dict-sharing table — the
// "pre-append snapshot" a cached entry would have been aggregated from.
func prefixView(t *table.Table, n int) *table.Table {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return t.Gather(t.Name(), idx)
}

// assertIdentical compares cells one by one: values, nulls, schema, and row
// order must all match.
func assertIdentical(t *testing.T, got, want *table.Table) {
	t.Helper()
	if got.NumRows() != want.NumRows() || got.NumCols() != want.NumCols() {
		t.Fatalf("shape %dx%d, want %dx%d", got.NumRows(), got.NumCols(), want.NumRows(), want.NumCols())
	}
	for c := 0; c < want.NumCols(); c++ {
		if got.Col(c).Name() != want.Col(c).Name() || got.Col(c).Type() != want.Col(c).Type() {
			t.Fatalf("col %d schema %s/%s, want %s/%s", c,
				got.Col(c).Name(), got.Col(c).Type(), want.Col(c).Name(), want.Col(c).Type())
		}
		for r := 0; r < want.NumRows(); r++ {
			gv, wv := got.Col(c).Value(r), want.Col(c).Value(r)
			if gv.Null != wv.Null || (!gv.Null && gv.String() != wv.String()) {
				t.Fatalf("cell (%d,%d) = %v, want %v", r, c, gv, wv)
			}
		}
	}
}

func TestMergeAppendedGroupsDeltaOnlyAndBaseOnlyGroups(t *testing.T) {
	tb := table.New("m", []table.ColumnDef{
		{Name: "k", Typ: table.TString},
		{Name: "v", Typ: table.TInt64},
	})
	tb.AppendRow(table.Str("old"), table.Int(1))
	tb.AppendRow(table.Str("both"), table.Int(2))
	full := tb.Append([][]table.Value{
		{table.Str("both"), table.Int(10)},
		{table.Str("new"), table.Int(20)},
		{table.Str("new2"), table.Int(30)},
	})
	aggs := []Agg{CountStar(), {Kind: AggSum, Col: 1, Name: "s"}}
	cold := GroupByHash(full, []int{0}, aggs, "out")
	cached := GroupByHash(prefixView(full, full.DeltaStart()), []int{0}, aggs, "out")
	deltaAgg := GroupByHash(full.DeltaView(), []int{0}, aggs, "out__d")
	merged, err := MergeAppendedGroups(cached, deltaAgg, 1, aggs, "out")
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, merged, cold)
	// Row order: base-first-appearance groups first, then delta-only groups
	// in delta first-appearance order — exactly cold order.
	names := []string{"old", "both", "new", "new2"}
	for i, want := range names {
		if got := merged.Col(0).Value(i).S; got != want {
			t.Fatalf("row %d group = %q, want %q", i, got, want)
		}
	}
}

func TestMergeAppendedGroupsShapeErrors(t *testing.T) {
	tb := table.New("m", []table.ColumnDef{
		{Name: "k", Typ: table.TString},
		{Name: "v", Typ: table.TFloat64},
	})
	tb.AppendRow(table.Str("a"), table.Float(1))
	full := tb.Append([][]table.Value{{table.Str("b"), table.Float(2)}})
	aggs := []Agg{CountStar()}
	cached := GroupByHash(prefixView(full, 1), []int{0}, aggs, "out")
	deltaAgg := GroupByHash(full.DeltaView(), []int{0}, aggs, "out__d")
	if _, err := MergeAppendedGroups(cached, deltaAgg, 2, aggs, "out"); err == nil {
		t.Fatal("wrong nKeys accepted")
	}
	if _, err := MergeAppendedGroups(cached, deltaAgg, 1, []Agg{CountStar(), CountStar()}, "out"); err == nil {
		t.Fatal("agg arity mismatch accepted")
	}
	bad := GroupByHash(full.DeltaView(), []int{0}, []Agg{{Kind: AggSum, Col: 1, Name: "cnt"}}, "out__d")
	if _, err := MergeAppendedGroups(cached, bad, 1, aggs, "out"); err == nil {
		t.Fatal("agg output type mismatch accepted")
	}
}
