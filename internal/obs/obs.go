// Package obs is the observability registry shared by the server and the
// CLI: a small set of atomically-updated counters, gauges and histograms that
// render as Prometheus text exposition format (the layout exporters like
// wmi_exporter produce) and publish as a single expvar variable. It has no
// dependency on the rest of the module, so every layer — scheduler, engine,
// cache, server — can hang its counters here without import cycles.
//
// Concurrency: every metric type is safe for concurrent use. Counter and
// Gauge are single atomic words; Histogram uses per-bucket atomics; the
// registry itself takes a mutex only on registration, never on update.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the Prometheus metric type emitted in the # TYPE line.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing float64 (Prometheus counters are
// floats; plan costs need the fraction, event counts stay integral).
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by d (d must be >= 0; negative deltas are
// silently dropped to keep the counter monotonic).
func (c *Counter) Add(d float64) {
	if d < 0 {
		return
	}
	for {
		old := c.bits.Load()
		v := math.Float64frombits(old) + d
		if c.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reads the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d (may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// SetMax raises the gauge to v when v exceeds the current value (for
// high-water marks like peak memory).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram in the Prometheus shape:
// observation counts per upper bound, plus _sum and _count.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // one per bound, plus +Inf at the end
	sum    Counter
	total  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.counts[len(h.bounds)].Add(1) // +Inf bucket counts everything
	h.sum.Add(v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Snapshot copies the histogram's current bucket counts, sum and total.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.bounds)),
	}
	for i := range h.bounds {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.total.Load()
	s.Sum = h.sum.Value()
	return s
}

// Quantile estimates the q-quantile of the observed distribution by linear
// interpolation within the cumulative buckets (see HistSnapshot.Quantile).
// The estimate's resolution is the bucket width around the target rank.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// NewHistogram builds a standalone histogram (not attached to any registry)
// with the given ascending upper bounds — for per-run measurement windows
// like the load harness's per-level latency distribution.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// ExpBuckets builds n geometrically spaced upper bounds starting at start
// with the given growth factor — finer-grained latency buckets than
// DurationBuckets when quantile estimates matter.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	b := start
	for i := 0; i < n; i++ {
		out[i] = b
		b *= factor
	}
	return out
}

// metric is one registered family member (possibly carrying baked-in labels).
type metric struct {
	name    string // full series name, labels included: foo_total{reason="full"}
	help    string
	kind    Kind
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // collect-time callback (Func)
}

// family groups series sharing a metric name for single # HELP/# TYPE lines.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Registry holds the process's metrics. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu         sync.Mutex
	metrics    map[string]*metric
	order      []string
	collectors []*collectorEntry

	// gatherMu serializes collector gathers; gatherCh is the reusable
	// buffered sample channel they share (see runCollector).
	gatherMu sync.Mutex
	gatherCh chan Metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.metrics[m.name]; ok {
		return have // idempotent: same series resolves to the same metric
	}
	r.metrics[m.name] = m
	r.order = append(r.order, m.name)
	return m
}

// Counter registers a counter series and returns its backing object;
// registering the same series name again returns the original, so updates
// from every caller land on one series. name may carry baked-in labels:
// `gbmqo_sched_window_close_total{reason="full"}` — series of one family
// share # HELP/# TYPE lines in the exposition.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(&metric{name: name, help: help, kind: KindCounter, counter: &Counter{}})
	if m.counter == nil {
		return &Counter{} // name collided with another type; detached fallback
	}
	return m.counter
}

// Gauge registers (or resolves) a gauge series.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(&metric{name: name, help: help, kind: KindGauge, gauge: &Gauge{}})
	if m.gauge == nil {
		return &Gauge{}
	}
	return m.gauge
}

// Histogram registers a histogram with the given upper bounds (ascending).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]atomic.Int64, len(bounds)+1)}
	m := r.register(&metric{name: name, help: help, kind: KindHistogram, hist: h})
	if m.hist == nil {
		return h
	}
	return m.hist
}

// Func registers a collect-time callback series: the value is read fresh on
// every scrape (how cache residency and cumulative cache counters surface
// without double bookkeeping).
func (r *Registry) Func(name, help string, kind Kind, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kind, fn: fn})
}

// WritePrometheus renders every series — directly registered ones and every
// registered collector's gathered samples — in Prometheus text exposition
// format (text/plain; version 0.0.4), families sorted by name, # HELP and
// # TYPE emitted once per family (families may span collectors; the first
// series' help wins).
func (r *Registry) WritePrometheus(w io.Writer) {
	seenFamily := map[string]bool{}
	for _, m := range r.allSeries() {
		fam := familyOf(m.Name)
		if !seenFamily[fam] {
			seenFamily[fam] = true
			fmt.Fprintf(w, "# HELP %s %s\n", fam, m.Help)
			fmt.Fprintf(w, "# TYPE %s %s\n", fam, m.Kind)
		}
		if h := m.Hist; h != nil {
			cum := int64(0)
			for i, b := range h.Bounds {
				cum += h.Counts[i]
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", fam, formatFloat(b), cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", fam, h.Count)
			fmt.Fprintf(w, "%s_sum %s\n", fam, formatFloat(h.Sum))
			fmt.Fprintf(w, "%s_count %d\n", fam, h.Count)
			continue
		}
		fmt.Fprintf(w, "%s %s\n", m.Name, formatFloat(m.Value))
	}
}

// Snapshot returns every series' current value keyed by series name —
// collector-gathered samples included (histograms contribute name_sum and
// name_count). This is the expvar shape.
func (r *Registry) Snapshot() map[string]float64 {
	series := r.allSeries()
	out := make(map[string]float64, len(series))
	for _, m := range series {
		if h := m.Hist; h != nil {
			out[m.Name+"_sum"] = h.Sum
			out[m.Name+"_count"] = float64(h.Count)
			continue
		}
		out[m.Name] = m.Value
	}
	return out
}

// formatFloat renders a float the way Prometheus clients do: integral values
// without a decimal point, everything else in shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// expvar publication: one process-wide "gbmqo" expvar.Var backed by whichever
// registry was most recently published. expvar.Publish panics on duplicate
// names, so the indirection makes PublishExpvar idempotent and re-pointable
// (tests open many DBs in one process).
var (
	expvarOnce sync.Once
	expvarCur  atomic.Pointer[Registry]
)

// PublishExpvar exposes the registry under the expvar name "gbmqo" (visible
// on /debug/vars). Later calls re-point the variable at the new registry.
func PublishExpvar(r *Registry) {
	expvarCur.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("gbmqo", expvar.Func(func() any {
			if cur := expvarCur.Load(); cur != nil {
				return cur.Snapshot()
			}
			return map[string]float64{}
		}))
	})
}

// DurationBuckets are the default latency histogram bounds, in seconds
// (50µs … ~3.2s, powers of four).
var DurationBuckets = []float64{0.00005, 0.0002, 0.0008, 0.0032, 0.0128, 0.0512, 0.2048, 0.8192, 3.2768}

// SizeBuckets are the default batch-size histogram bounds.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64}
