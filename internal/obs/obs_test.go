package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-5) // dropped: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("t_gauge", "a gauge")
	g.Set(4)
	g.Add(-1)
	g.SetMax(2) // below current: no-op
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge = %v, want 9", got)
	}
}

func TestDuplicateRegistrationSharesSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "h")
	b := r.Counter("dup_total", "h")
	a.Inc()
	b.Inc()
	if a.Value() != 2 || b.Value() != 2 {
		t.Fatalf("duplicate registration split the series: %v / %v", a.Value(), b.Value())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_hist", "a histogram", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 55.5 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`t_hist_bucket{le="1"} 1`,
		`t_hist_bucket{le="10"} 2`,
		`t_hist_bucket{le="+Inf"} 3`,
		"t_hist_sum 55.5",
		"t_hist_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`t_close_total{reason="full"}`, "closes").Add(2)
	r.Counter(`t_close_total{reason="deadline"}`, "closes").Inc()
	r.Func("t_resident_bytes", "residency", KindGauge, func() float64 { return 42 })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	// One HELP/TYPE pair per family even with labeled series.
	if n := strings.Count(out, "# HELP t_close_total"); n != 1 {
		t.Fatalf("HELP emitted %d times:\n%s", n, out)
	}
	if n := strings.Count(out, "# TYPE t_close_total counter"); n != 1 {
		t.Fatalf("TYPE emitted %d times:\n%s", n, out)
	}
	for _, want := range []string{
		`t_close_total{reason="full"} 2`,
		`t_close_total{reason="deadline"} 1`,
		"# TYPE t_resident_bytes gauge",
		"t_resident_bytes 42",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("s_total", "h").Add(7)
	h := r.Histogram("s_hist", "h", []float64{1})
	h.Observe(0.5)
	snap := r.Snapshot()
	if snap["s_total"] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap["s_hist_count"] != 1 || snap["s_hist_sum"] != 0.5 {
		t.Fatalf("snapshot hist = %v", snap)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("e_total", "h").Inc()
	PublishExpvar(r1)
	r2 := NewRegistry()
	r2.Counter("e_total", "h").Add(5)
	PublishExpvar(r2) // must not panic, re-points the variable
	if cur := expvarCur.Load(); cur != r2 {
		t.Fatal("expvar not re-pointed")
	}
}

// Concurrent updates and scrapes must be clean under -race.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	g := r.Gauge("c_gauge", "h")
	h := r.Histogram("c_hist", "h", DurationBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.SetMax(float64(i))
				h.Observe(0.001)
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var sb strings.Builder
				r.WritePrometheus(&sb)
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("lost updates: %v", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("lost observations: %v", h.Count())
	}
}
