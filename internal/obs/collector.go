package obs

import (
	"fmt"
	"sort"
	"time"
)

// This file is the collector half of the registry: instead of every subsystem
// threading its counters through whoever owns the shared registry, a
// subsystem implements the two-method Collector interface and registers
// itself once. At scrape time the registry gathers each collector's samples
// (alongside its own directly-registered series), records per-collector
// success and duration self-metrics, and /healthz reports each collector's
// last outcome. A failing or panicking collector costs only its own series —
// the scrape and every other collector still render.

// Metric is one collected sample: a full series name (labels baked in), its
// family help text and kind, and either a scalar value or a histogram
// snapshot. Collectors send these on the channel passed to Collect.
type Metric struct {
	// Name is the full series name, labels included:
	// `gbmqo_loadgen_ops_total{kind="query"}`.
	Name string
	// Help is the family's # HELP text (first writer wins within a family).
	Help string
	// Kind is the family's # TYPE.
	Kind Kind
	// Value carries counter and gauge samples.
	Value float64
	// Hist carries histogram samples (Kind == KindHistogram); Value is
	// ignored when set.
	Hist *HistSnapshot
}

// HistSnapshot is a point-in-time copy of a histogram: per-bucket counts
// (non-cumulative, one per bound), the total observation count, and the sum.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the cumulative buckets, the standard Prometheus histogram_quantile
// estimate: the target rank is located in its bucket and positioned
// proportionally between the bucket's bounds (the first bucket interpolates
// from zero). Observations beyond the last finite bound clamp to that bound.
// An empty histogram returns 0.
func (s *HistSnapshot) Quantile(q float64) float64 {
	total := float64(s.Count)
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	cum, lower := 0.0, 0.0
	for i, b := range s.Bounds {
		n := float64(s.Counts[i])
		if n > 0 && cum+n >= rank {
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			}
			return lower + (b-lower)*frac
		}
		cum += n
		lower = b
	}
	if len(s.Bounds) > 0 {
		return s.Bounds[len(s.Bounds)-1]
	}
	return 0
}

// Collector is the one interface a subsystem implements to surface metrics
// and health: Name identifies it (unique per registry; also the label on its
// self-metrics), Collect sends every current sample on ch and returns nil,
// or an error when the subsystem cannot report. Collect must be safe for
// concurrent use and must not retain ch.
type Collector interface {
	Name() string
	Collect(ch chan<- Metric) error
}

// HealthDetailer is optionally implemented by collectors that contribute a
// section to /healthz: key names the JSON field ("breakers", "appends", …),
// detail is its value, and include gates emission (so empty sections keep
// today's absent-key behavior).
type HealthDetailer interface {
	HealthDetail() (key string, detail any, include bool)
}

// CollectorHealth is one collector's status from the most recent gather:
// whether Collect succeeded, its error if not, and how long it took.
type CollectorHealth struct {
	Name     string
	OK       bool
	Err      string
	Duration time.Duration
}

// collectorEntry tracks one registered collector and its self-metrics.
type collectorEntry struct {
	c        Collector
	collects *Counter
	errs     *Counter
	success  *Gauge
	duration *Gauge
}

// RegisterCollector adds c to the registry's gather set. Its samples appear
// in every WritePrometheus / Snapshot alongside directly registered series
// (direct series win name collisions), and four self-metrics track it:
// gbmqo_obs_collects_total, gbmqo_obs_collect_errors_total,
// gbmqo_obs_collect_success and gbmqo_obs_collect_duration_seconds, each
// labeled {collector="<name>"}. Registering a second collector under the
// same name is an error.
func (r *Registry) RegisterCollector(c Collector) error {
	name := c.Name()
	if name == "" {
		return fmt.Errorf("obs: collector with empty name")
	}
	r.mu.Lock()
	for _, e := range r.collectors {
		if e.c.Name() == name {
			r.mu.Unlock()
			return fmt.Errorf("obs: collector %q already registered", name)
		}
	}
	r.mu.Unlock()
	e := &collectorEntry{
		c: c,
		collects: r.Counter(fmt.Sprintf("gbmqo_obs_collects_total{collector=%q}", name),
			"metric gathers per collector"),
		errs: r.Counter(fmt.Sprintf("gbmqo_obs_collect_errors_total{collector=%q}", name),
			"failed metric gathers per collector"),
		success: r.Gauge(fmt.Sprintf("gbmqo_obs_collect_success{collector=%q}", name),
			"1 when the collector's last gather succeeded, 0 when it failed"),
		duration: r.Gauge(fmt.Sprintf("gbmqo_obs_collect_duration_seconds{collector=%q}", name),
			"duration of the collector's last gather"),
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, e)
	r.mu.Unlock()
	return nil
}

// Collectors returns the registered collectors in registration order.
func (r *Registry) Collectors() []Collector {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Collector, len(r.collectors))
	for i, e := range r.collectors {
		out[i] = e.c
	}
	return out
}

// gatherCap bounds the samples one Collect call may send: the gather channel
// is buffered this deep and drained only after the collector returns, so the
// whole scrape runs synchronously in the calling goroutine — no per-scrape
// goroutines, no channel handoff context switches. (A scrape-per-iteration
// hot loop on GOMAXPROCS=1 must not starve the serving path; goroutine-per-
// collector gathers did exactly that.) A collector exceeding the cap would
// block forever, so it is deliberately generous: two orders of magnitude
// above the largest real collector.
const gatherCap = 4096

// runCollector runs one collector synchronously in the calling goroutine,
// with panic containment: a panicking collector yields an error, never a
// dead scrape. Caller must hold r.gatherMu (the buffered channel is reused
// across gathers to keep scrape-time allocation flat).
func (r *Registry) runCollector(c Collector) (out []Metric, err error) {
	if r.gatherCh == nil {
		r.gatherCh = make(chan Metric, gatherCap)
	}
	func() {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("obs: collector %q panicked: %v", c.Name(), p)
			}
		}()
		err = c.Collect(r.gatherCh)
	}()
	for {
		select {
		case m := <-r.gatherCh:
			out = append(out, m)
		default:
			return out, err
		}
	}
}

// gather runs every registered collector, updates its self-metrics, and
// returns the collected samples plus per-collector health.
func (r *Registry) gather() ([]Metric, []CollectorHealth) {
	r.mu.Lock()
	entries := append([]*collectorEntry(nil), r.collectors...)
	r.mu.Unlock()
	r.gatherMu.Lock()
	defer r.gatherMu.Unlock()
	var ms []Metric
	health := make([]CollectorHealth, 0, len(entries))
	for _, e := range entries {
		t0 := time.Now()
		collected, err := r.runCollector(e.c)
		d := time.Since(t0)
		e.collects.Inc()
		e.duration.Set(d.Seconds())
		h := CollectorHealth{Name: e.c.Name(), OK: err == nil, Duration: d}
		if err != nil {
			e.errs.Inc()
			e.success.Set(0)
			h.Err = err.Error()
		} else {
			e.success.Set(1)
			ms = append(ms, collected...)
		}
		health = append(health, h)
	}
	return ms, health
}

// CheckCollectors runs a fresh gather (self-metrics update exactly as a
// scrape would) and returns each collector's status — the /healthz payload.
func (r *Registry) CheckCollectors() []CollectorHealth {
	_, health := r.gather()
	return health
}

// Collect makes a Registry forwardable: every directly registered series is
// emitted as a Metric (Func callbacks evaluated fresh, histograms
// snapshotted). Subsystems that keep push-style counters on a private
// registry implement Collector by delegating here; registered collectors of
// the forwarded registry are NOT descended into.
func (r *Registry) Collect(ch chan<- Metric) error {
	for _, m := range r.directSeries() {
		ch <- m
	}
	return nil
}

// directSeries snapshots every directly registered series as Metrics, in
// registration order.
func (r *Registry) directSeries() []Metric {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	byName := make(map[string]*metric, len(names))
	for _, n := range names {
		byName[n] = r.metrics[n]
	}
	r.mu.Unlock()
	out := make([]Metric, 0, len(names))
	for _, n := range names {
		m := byName[n]
		s := Metric{Name: m.name, Help: m.help, Kind: m.kind}
		switch {
		case m.hist != nil:
			s.Hist = m.hist.Snapshot()
		case m.fn != nil:
			s.Value = m.fn()
		case m.counter != nil:
			s.Value = m.counter.Value()
		case m.gauge != nil:
			s.Value = m.gauge.Value()
		}
		out = append(out, s)
	}
	return out
}

// allSeries is one scrape's merged view: collectors gathered first (so their
// self-metrics reflect this scrape), then direct series, then collected
// series that do not collide with a direct name.
func (r *Registry) allSeries() []Metric {
	collected, _ := r.gather()
	direct := r.directSeries()
	seen := make(map[string]bool, len(direct)+len(collected))
	out := make([]Metric, 0, len(direct)+len(collected))
	for _, m := range direct {
		seen[m.Name] = true
		out = append(out, m)
	}
	for _, m := range collected {
		if seen[m.Name] {
			continue
		}
		seen[m.Name] = true
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
