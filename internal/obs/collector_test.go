package obs

import (
	"errors"
	"strings"
	"testing"
)

// --- Quantile estimates pinned on known distributions -----------------------

// uniformHist observes 1..n once each against bounds at every multiple of
// step up to n, so the true quantiles land exactly on interpolation points.
func uniformHist(n int, step float64) *Histogram {
	var bounds []float64
	for b := step; b <= float64(n); b += step {
		bounds = append(bounds, b)
	}
	h := NewHistogram(bounds)
	for i := 1; i <= n; i++ {
		h.Observe(float64(i))
	}
	return h
}

func TestQuantileUniform(t *testing.T) {
	// 1000 samples uniform over (0,1000], bounds every 10: the bucket holding
	// rank q*1000 has lower bound 10*(k-1), upper 10k, and 10 samples, so the
	// linear interpolation reproduces the exact empirical quantile.
	h := uniformHist(1000, 10)
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 500},
		{0.95, 950},
		{0.99, 990},
		{1.00, 1000},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	// All mass in one bucket interpolates within that bucket's width.
	h := NewHistogram([]float64{10, 20, 30})
	for i := 0; i < 100; i++ {
		h.Observe(15) // all land in (10, 20]
	}
	if got := h.Quantile(0.5); got != 15 {
		t.Errorf("Quantile(0.5) = %v, want 15 (midpoint of (10,20])", got)
	}
	if got := h.Quantile(1.0); got != 20 {
		t.Errorf("Quantile(1.0) = %v, want 20 (bucket upper bound)", got)
	}
}

func TestQuantileOverflowClampsToLastBound(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(100) // beyond the last finite bound
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("Quantile(0.99) = %v, want clamp to last bound 2", got)
	}
}

func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("Quantile on empty histogram = %v, want 0", got)
	}
	var s HistSnapshot
	if got := s.Quantile(0.9); got != 0 {
		t.Errorf("Quantile on zero snapshot = %v, want 0", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("ExpBuckets len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ExpBuckets[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// --- Collector machinery ----------------------------------------------------

type fakeCollector struct {
	name    string
	metrics []Metric
	err     error
	panics  bool
}

func (f *fakeCollector) Name() string { return f.name }
func (f *fakeCollector) Collect(ch chan<- Metric) error {
	if f.panics {
		panic("boom")
	}
	for _, m := range f.metrics {
		ch <- m
	}
	return f.err
}

func TestRegisterCollectorDuplicate(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterCollector(&fakeCollector{name: "a"}); err != nil {
		t.Fatalf("first register: %v", err)
	}
	if err := r.RegisterCollector(&fakeCollector{name: "a"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := r.RegisterCollector(&fakeCollector{name: ""}); err == nil {
		t.Fatal("empty name accepted")
	}
	if n := len(r.Collectors()); n != 1 {
		t.Fatalf("Collectors() len = %d, want 1", n)
	}
}

func TestCollectorSamplesInScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter("direct_total", "a direct counter").Add(3)
	c := &fakeCollector{name: "fake", metrics: []Metric{
		{Name: `col_total{k="v"}`, Help: "collected", Kind: KindCounter, Value: 7},
	}}
	if err := r.RegisterCollector(c); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"direct_total 3",
		`col_total{k="v"} 7`,
		"# TYPE col_total counter",
		`gbmqo_obs_collects_total{collector="fake"} 1`,
		`gbmqo_obs_collect_success{collector="fake"} 1`,
		`gbmqo_obs_collect_duration_seconds{collector="fake"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q\n%s", want, out)
		}
	}
	snap := r.Snapshot()
	if snap[`col_total{k="v"}`] != 7 {
		t.Errorf("Snapshot col_total = %v, want 7", snap[`col_total{k="v"}`])
	}
}

func TestCollectorErrorAndPanicContained(t *testing.T) {
	r := NewRegistry()
	r.Counter("alive_total", "survives bad collectors").Inc()
	bad := &fakeCollector{name: "bad", err: errors.New("down"),
		metrics: []Metric{{Name: "bad_series", Kind: KindGauge, Value: 1}}}
	pan := &fakeCollector{name: "pan", panics: true}
	ok := &fakeCollector{name: "ok", metrics: []Metric{
		{Name: "ok_series", Help: "fine", Kind: KindGauge, Value: 2}}}
	for _, c := range []Collector{bad, pan, ok} {
		if err := r.RegisterCollector(c); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, "alive_total 1") || !strings.Contains(out, "ok_series 2") {
		t.Errorf("healthy series missing from scrape\n%s", out)
	}
	if strings.Contains(out, "bad_series") {
		t.Errorf("failed collector's samples leaked into scrape\n%s", out)
	}
	if !strings.Contains(out, `gbmqo_obs_collect_success{collector="bad"} 0`) ||
		!strings.Contains(out, `gbmqo_obs_collect_success{collector="pan"} 0`) ||
		!strings.Contains(out, `gbmqo_obs_collect_success{collector="ok"} 1`) {
		t.Errorf("self-metrics wrong\n%s", out)
	}

	health := r.CheckCollectors()
	byName := map[string]CollectorHealth{}
	for _, h := range health {
		byName[h.Name] = h
	}
	if byName["bad"].OK || byName["bad"].Err != "down" {
		t.Errorf("bad health = %+v", byName["bad"])
	}
	if byName["pan"].OK || !strings.Contains(byName["pan"].Err, "panicked") {
		t.Errorf("pan health = %+v", byName["pan"])
	}
	if !byName["ok"].OK {
		t.Errorf("ok health = %+v", byName["ok"])
	}
}

func TestDirectSeriesWinCollisions(t *testing.T) {
	r := NewRegistry()
	r.Gauge("shared_series", "direct owner").Set(42)
	c := &fakeCollector{name: "shadow", metrics: []Metric{
		{Name: "shared_series", Help: "impostor", Kind: KindGauge, Value: 7}}}
	if err := r.RegisterCollector(c); err != nil {
		t.Fatal(err)
	}
	if got := r.Snapshot()["shared_series"]; got != 42 {
		t.Errorf("collision: got %v, want direct value 42", got)
	}
}

func TestRegistryForwardsAsCollector(t *testing.T) {
	// A subsystem keeps counters on a private registry and forwards it.
	private := NewRegistry()
	private.Counter("sub_ops_total", "subsystem ops").Add(5)
	private.Histogram("sub_latency_seconds", "subsystem latency", []float64{0.1, 1}).Observe(0.05)

	root := NewRegistry()
	if err := root.RegisterCollector(namedForward{r: private}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	root.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"sub_ops_total 5",
		`sub_latency_seconds_bucket{le="0.1"} 1`,
		`sub_latency_seconds_bucket{le="+Inf"} 1`,
		"sub_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("forwarded scrape missing %q\n%s", want, out)
		}
	}
}

type namedForward struct{ r *Registry }

func (n namedForward) Name() string                   { return "sub" }
func (n namedForward) Collect(ch chan<- Metric) error { return n.r.Collect(ch) }
