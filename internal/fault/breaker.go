// Package fault holds the server-grade fault-containment primitives that sit
// between the scheduler and the engine: a per-resource circuit breaker with
// the classic closed → open → half-open state machine over a sliding
// failure-rate window. The breaker's job is blast-radius control — when a
// table's executions keep failing, new requests for it fail fast with a
// typed, Retry-After-carrying error instead of queueing more doomed work
// behind the fault.
package fault

import (
	"fmt"
	"sync"
	"time"
)

// State is a breaker's position in the closed/open/half-open machine.
type State int

// Breaker states.
const (
	// StateClosed: requests flow; outcomes feed the failure window.
	StateClosed State = iota
	// StateOpen: requests fail fast until the open interval elapses.
	StateOpen
	// StateHalfOpen: a bounded number of probe requests test recovery; one
	// probe success closes the breaker, one probe failure re-opens it.
	StateHalfOpen
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config tunes a Breaker. Zero values select the documented defaults.
type Config struct {
	// Window is the number of most-recent outcomes the failure rate is
	// computed over (default 32).
	Window int
	// MinSamples gates tripping: the breaker never opens before this many
	// outcomes are in the window (default 8), so one early failure on a cold
	// table cannot open it.
	MinSamples int
	// FailureRate opens the breaker when the windowed rate reaches it
	// (default 0.5).
	FailureRate float64
	// OpenFor is how long the breaker fails fast before probing (default 2s).
	OpenFor time.Duration
	// Probes is how many concurrent requests the half-open state admits
	// (default 1).
	Probes int
	// Now overrides the clock (tests). Nil selects time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = 0.5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.Probes <= 0 {
		c.Probes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// OpenError is the fail-fast error an open breaker returns. It carries the
// remaining open time so front-ends can surface a Retry-After.
type OpenError struct {
	// Name is the guarded resource (the base table).
	Name string
	// RetryAfter is how long until the breaker will admit a probe.
	RetryAfter time.Duration
}

// Error renders the fail-fast decision.
func (e *OpenError) Error() string {
	return fmt.Sprintf("fault: circuit breaker for %q open (retry in %v)", e.Name, e.RetryAfter)
}

// Snapshot is a point-in-time view of one breaker, the shape /healthz
// reports.
type Snapshot struct {
	// Name is the guarded resource.
	Name string
	// State is the current position.
	State State
	// Failures and Samples describe the sliding window.
	Failures int
	Samples  int
	// RetryAfter is the remaining fail-fast time (open state only).
	RetryAfter time.Duration
	// LastFailure is the message of the most recent failure recorded via
	// RecordErr — the "why" behind an open breaker. Empty when no failure has
	// been recorded (or failures were recorded via plain Record).
	LastFailure string
}

// Breaker is one resource's circuit breaker. Safe for concurrent use.
type Breaker struct {
	cfg  Config
	name string

	mu       sync.Mutex
	state    State
	ring     []bool // true = failure
	idx, n   int
	fails    int
	openedAt time.Time
	probes   int    // half-open probe slots remaining
	lastErr  string // most recent failure reason (RecordErr)
}

// New creates a closed breaker guarding name.
func New(name string, cfg Config) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, name: name, ring: make([]bool, cfg.Window)}
}

// Allow decides whether a request may proceed. It returns nil (go ahead —
// the caller must Record the outcome) or an *OpenError to fail fast with.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return nil
	case StateOpen:
		since := b.cfg.Now().Sub(b.openedAt)
		if since < b.cfg.OpenFor {
			return &OpenError{Name: b.name, RetryAfter: b.cfg.OpenFor - since}
		}
		// Open interval elapsed: move to half-open and admit this caller as
		// the first probe.
		b.state = StateHalfOpen
		b.probes = b.cfg.Probes - 1
		return nil
	default: // StateHalfOpen
		if b.probes > 0 {
			b.probes--
			return nil
		}
		return &OpenError{Name: b.name, RetryAfter: b.cfg.OpenFor}
	}
}

// Record feeds one outcome into the window and advances the state machine.
// Callers record every allowed attempt's outcome; caller-class failures
// (cancelled contexts) should not be recorded at all — they say nothing
// about the resource.
func (b *Breaker) Record(failure bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateHalfOpen:
		if failure {
			b.trip()
			return
		}
		// Recovery confirmed: close with a clean window so one stale failure
		// cannot immediately re-trip.
		b.state = StateClosed
		b.resetWindowLocked()
		return
	case StateOpen:
		// A straggler from before the trip; the window is already moot.
		return
	}
	if b.ring[b.idx] {
		b.fails--
	}
	b.ring[b.idx] = failure
	if failure {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.ring)
	if b.n < len(b.ring) {
		b.n++
	}
	if b.n >= b.cfg.MinSamples && float64(b.fails)/float64(b.n) >= b.cfg.FailureRate {
		b.trip()
	}
}

// RecordErr records a failure outcome and remembers err's message as the
// breaker's last-failure reason (surfaced in Snapshot.LastFailure and from
// there in /healthz). A nil err records a success, exactly like
// Record(false).
func (b *Breaker) RecordErr(err error) {
	if b == nil {
		return
	}
	if err == nil {
		b.Record(false)
		return
	}
	b.mu.Lock()
	b.lastErr = err.Error()
	b.mu.Unlock()
	b.Record(true)
}

// trip opens the breaker. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = StateOpen
	b.openedAt = b.cfg.Now()
	b.probes = 0
}

// resetWindowLocked clears the sliding window. Callers hold b.mu.
func (b *Breaker) resetWindowLocked() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.idx, b.n, b.fails = 0, 0, 0
}

// Snapshot reports the breaker's current state.
func (b *Breaker) Snapshot() Snapshot {
	if b == nil {
		return Snapshot{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := Snapshot{Name: b.name, State: b.state, Failures: b.fails, Samples: b.n,
		LastFailure: b.lastErr}
	if b.state == StateOpen {
		if left := b.cfg.OpenFor - b.cfg.Now().Sub(b.openedAt); left > 0 {
			s.RetryAfter = left
		}
	}
	return s
}
