package fault

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(clk *fakeClock) *Breaker {
	return New("lineitem", Config{
		Window:      8,
		MinSamples:  4,
		FailureRate: 0.5,
		OpenFor:     time.Second,
		Now:         clk.now,
	})
}

func TestBreakerStaysClosedBelowRate(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	// 1 failure in 4 samples = 25% < 50%: stays closed.
	b.Record(true)
	b.Record(false)
	b.Record(false)
	b.Record(false)
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow below failure rate: %v", err)
	}
	if s := b.Snapshot(); s.State != StateClosed || s.Failures != 1 || s.Samples != 4 {
		t.Fatalf("snapshot = %+v, want closed 1/4", s)
	}
}

func TestBreakerNeverTripsBelowMinSamples(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	// 3 consecutive failures is a 100% rate, but only 3 < MinSamples=4.
	b.Record(true)
	b.Record(true)
	b.Record(true)
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow below MinSamples: %v", err)
	}
}

func TestBreakerTripsAndFailsFast(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	err := b.Allow()
	var oe *OpenError
	if !errors.As(err, &oe) {
		t.Fatalf("Allow after trip = %v, want *OpenError", err)
	}
	if oe.Name != "lineitem" {
		t.Fatalf("OpenError.Name = %q", oe.Name)
	}
	if oe.RetryAfter <= 0 || oe.RetryAfter > time.Second {
		t.Fatalf("OpenError.RetryAfter = %v", oe.RetryAfter)
	}
	// Time passing inside the open window still fails fast, with shrinking
	// RetryAfter.
	clk.advance(400 * time.Millisecond)
	if !errors.As(b.Allow(), &oe) {
		t.Fatal("Allow mid-open window succeeded")
	}
	if oe.RetryAfter > 600*time.Millisecond {
		t.Fatalf("RetryAfter did not shrink: %v", oe.RetryAfter)
	}
}

func TestBreakerHalfOpenProbeSuccessCloses(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	clk.advance(time.Second)
	// First Allow after OpenFor is the probe.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow: %v", err)
	}
	if s := b.Snapshot(); s.State != StateHalfOpen {
		t.Fatalf("state after probe admit = %v, want half-open", s.State)
	}
	// A second caller during the probe is rejected (Probes=1).
	var oe *OpenError
	if !errors.As(b.Allow(), &oe) {
		t.Fatal("second caller admitted during single-probe half-open")
	}
	b.Record(false)
	if s := b.Snapshot(); s.State != StateClosed || s.Samples != 0 {
		t.Fatalf("snapshot after probe success = %+v, want clean closed", s)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow after recovery: %v", err)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow: %v", err)
	}
	b.Record(true)
	if s := b.Snapshot(); s.State != StateOpen {
		t.Fatalf("state after probe failure = %v, want open", s.State)
	}
	// The fresh open interval starts at the failed probe, not the first trip.
	var oe *OpenError
	if !errors.As(b.Allow(), &oe) || oe.RetryAfter != time.Second {
		t.Fatalf("Allow after re-trip = %v", b.Allow())
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newTestBreaker(clk)
	// Fill the 8-slot window with successes, then 3 failures: 3/8 < 50%.
	for i := 0; i < 8; i++ {
		b.Record(false)
	}
	for i := 0; i < 3; i++ {
		b.Record(true)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow at 3/8 failures: %v", err)
	}
	// One more failure makes the window 4/8 = 50%: trips.
	b.Record(true)
	if b.Allow() == nil {
		t.Fatal("breaker did not trip at windowed 50% rate")
	}
}

func TestNilBreakerIsNoop(t *testing.T) {
	var b *Breaker
	if err := b.Allow(); err != nil {
		t.Fatalf("nil Allow: %v", err)
	}
	b.Record(true) // must not panic
	if s := b.Snapshot(); s.State != StateClosed {
		t.Fatalf("nil Snapshot = %+v", s)
	}
}
