package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gbmqo/internal/cache"
	"gbmqo/internal/colset"
	"gbmqo/internal/datagen"
	"gbmqo/internal/exec"
	"gbmqo/internal/fault"
)

// retrySets is an 8-query request shaped like the acceptance scenario.
func retrySets() []colset.Set {
	return []colset.Set{
		colset.Of(datagen.LReturnFlag, datagen.LLineStatus, datagen.LShipMode, datagen.LShipDate),
		colset.Of(datagen.LReturnFlag, datagen.LLineStatus, datagen.LShipMode),
		colset.Of(datagen.LReturnFlag, datagen.LLineStatus),
		colset.Of(datagen.LLineStatus, datagen.LShipMode),
		colset.Of(datagen.LReturnFlag),
		colset.Of(datagen.LLineStatus),
		colset.Of(datagen.LShipMode),
		colset.Of(datagen.LShipDate),
	}
}

// TestRetryFaultTransientSucceeds injects one morsel-style panic into the
// first attempt of an 8-query batch and checks the retry loop answers it:
// success, byte-correct results, and the failed attempt attributed in the
// report with its class, backoff and degraded modes.
func TestRetryFaultTransientSucceeds(t *testing.T) {
	e, li := newTestEngine(t, 4000)
	sets := retrySets()

	var fired atomic.Bool
	exec.Testing.SetFailPoint(func(site string) {
		if site == "engine.step" && fired.CompareAndSwap(false, true) {
			panic("injected transient fault")
		}
	})
	defer exec.Testing.ClearFailPoint()

	res, err := e.Run(Request{
		Table:      "lineitem",
		Sets:       sets,
		SharedScan: true,
		Parallel:   true,
		Retry:      RetryPolicy{MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond},
	})
	if err != nil {
		t.Fatalf("Run with one transient fault: %v", err)
	}
	if res.Report.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", res.Report.Attempts)
	}
	if len(res.Report.Retries) != 1 {
		t.Fatalf("Retries = %+v, want exactly one", res.Report.Retries)
	}
	ra := res.Report.Retries[0]
	if ra.Attempt != 1 || ra.Class != exec.ClassTransient || ra.Err == nil {
		t.Fatalf("RetryAttempt = %+v", ra)
	}
	var ee *exec.ExecError
	if !errors.As(ra.Err, &ee) {
		t.Fatalf("retried error %v is not an *exec.ExecError", ra.Err)
	}
	if len(ra.Degraded) == 0 || ra.Degraded[0] != "sequential" {
		t.Fatalf("Degraded = %v, want sequential first", ra.Degraded)
	}
	assertResultsMatch(t, li, sets, res.Report.Results)
}

// TestRetryFaultDisabledByDefault checks the zero-value policy preserves
// single-attempt semantics: a persistent injected fault surfaces as a typed
// error after exactly one attempt.
func TestRetryFaultDisabledByDefault(t *testing.T) {
	e, _ := newTestEngine(t, 2000)
	var fires atomic.Int64
	exec.Testing.SetFailPoint(func(site string) {
		if site == "engine.step" {
			if fires.Add(1) == 1 {
				panic("persistent fault")
			}
		}
	})
	defer exec.Testing.ClearFailPoint()

	_, err := e.Run(Request{Table: "lineitem", Sets: retrySets()})
	var ee *exec.ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want *exec.ExecError", err)
	}
	if n := fires.Load(); n != 1 {
		t.Fatalf("engine.step fired %d times, want 1 (no retry)", n)
	}
}

// TestRetryFaultLadderDescends checks a fault that persists through the
// sequential retry is finally answered by the fully degraded attempt
// (sequential + unshared + no-retain + no-cache), with both failed attempts
// attributed.
func TestRetryFaultLadderDescends(t *testing.T) {
	e, li := newTestEngine(t, 3000)
	sets := retrySets()
	var fires atomic.Int64
	exec.Testing.SetFailPoint(func(site string) {
		// Fail the first engine.step of attempts 1 and 2; attempt 3 runs clean.
		if site == "engine.step" {
			if n := fires.Add(1); n <= 2 {
				panic("double fault")
			}
		}
	})
	defer exec.Testing.ClearFailPoint()

	// Sequential from the start so the fire counter advances exactly once per
	// attempt reached (parallel sub-plans would consume several fires at once).
	res, err := e.Run(Request{
		Table:      "lineitem",
		Sets:       sets,
		SharedScan: true,
		Retry:      RetryPolicy{MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond},
	})
	if err != nil {
		t.Fatalf("Run with two transient faults: %v", err)
	}
	if res.Report.Attempts != 3 || len(res.Report.Retries) != 2 {
		t.Fatalf("Attempts = %d Retries = %d, want 3/2", res.Report.Attempts, len(res.Report.Retries))
	}
	second := res.Report.Retries[1].Degraded
	want := map[string]bool{"sequential": true, "unshared": true, "no-retain": true, "no-cache": true}
	for _, m := range second {
		delete(want, m)
	}
	if len(want) != 0 {
		t.Fatalf("second retry degraded = %v, missing %v", second, want)
	}
	// The winning attempt ran with NoRetain: no temp tables were materialized.
	if res.Report.TempTables != 0 {
		t.Fatalf("TempTables = %d on no-retain attempt, want 0", res.Report.TempTables)
	}
	assertResultsMatch(t, li, sets, res.Report.Results)
}

// TestRetryFaultExhaustionSurfacesError checks a fault that outlives the
// attempt budget surfaces the last error unchanged.
func TestRetryFaultExhaustionSurfacesError(t *testing.T) {
	e, _ := newTestEngine(t, 2000)
	exec.Testing.SetFailPoint(func(site string) {
		if site == "engine.step" {
			panic("unkillable fault")
		}
	})
	defer exec.Testing.ClearFailPoint()

	_, err := e.Run(Request{
		Table: "lineitem",
		Sets:  retrySets(),
		Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond},
	})
	var ee *exec.ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want *exec.ExecError after exhaustion", err)
	}
}

// TestRetryFaultCallerCancellationNotRetried checks a cancellation mid-plan
// is classified caller-side and never retried, even with attempts left.
func TestRetryFaultCallerCancellationNotRetried(t *testing.T) {
	e, _ := newTestEngine(t, 4000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var steps atomic.Int64
	exec.Testing.SetFailPoint(func(site string) {
		if site == "engine.step" && steps.Add(1) == 3 {
			cancel()
		}
	})
	defer exec.Testing.ClearFailPoint()

	_, err := e.Run(Request{
		Table:   "lineitem",
		Sets:    retrySets(),
		Context: ctx,
		Retry:   RetryPolicy{MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := steps.Load(); n != 3 {
		t.Fatalf("engine.step fired %d times, want 3 (cancelled attempt not retried)", n)
	}
}

// TestRetryFaultFatalNotRetried checks deterministic failures are classified
// fatal and fail immediately.
func TestRetryFaultFatalNotRetried(t *testing.T) {
	e, _ := newTestEngine(t, 100)
	_, err := e.Run(Request{
		Table: "no_such_table",
		Sets:  []colset.Set{colset.Of(0)},
		Retry: RetryPolicy{MaxAttempts: 5, BaseBackoff: 100 * time.Microsecond},
	})
	if err == nil {
		t.Fatal("Run on unknown table succeeded")
	}
	if exec.Classify(err) != exec.ClassFatal {
		t.Fatalf("Classify(%v) = %v, want fatal", err, exec.Classify(err))
	}
}

// TestRetryFaultNoRetainByteIdentical checks a NoRetain run produces results
// byte-identical to a normal run while materializing nothing.
func TestRetryFaultNoRetainByteIdentical(t *testing.T) {
	e, _ := newTestEngine(t, 3000)
	sets := retrySets()
	norm, err := e.Run(Request{Table: "lineitem", Sets: sets, SharedScan: true})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := e.Run(Request{Table: "lineitem", Sets: sets, SharedScan: true, NoRetain: true})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Report.TempTables != 0 {
		t.Fatalf("NoRetain run materialized %d temps", bare.Report.TempTables)
	}
	if bare.Report.RowsScanned <= norm.Report.RowsScanned {
		t.Fatalf("NoRetain scanned %d rows ≤ normal %d — re-derivation did not happen",
			bare.Report.RowsScanned, norm.Report.RowsScanned)
	}
	for _, s := range sets {
		a, b := norm.Report.Results[s], bare.Report.Results[s]
		if a == nil || b == nil {
			t.Fatalf("missing result for %s", s)
		}
		ai, _ := a.RowImage()
		bi, _ := b.RowImage()
		if string(ai) != string(bi) {
			t.Fatalf("set %s: NoRetain result differs from normal run", s)
		}
	}
}

// TestRetryFaultFlightLeaderPanicRetried is the singleflight regression at
// the engine boundary: a panic inside the cached residual computation (here
// at the cache.admit site, which fires inside the flight leader's Offer)
// surfaces as a typed transient error — never a nil value or a partial entry
// — and the retry ladder answers the request by dropping the cache.
func TestRetryFaultFlightLeaderPanicRetried(t *testing.T) {
	e, li := newTestEngine(t, 3000)
	e.SetCache(cache.New(cache.Config{MaxBytes: 64 << 20}))
	sets := retrySets()
	exec.Testing.SetFailPoint(func(site string) {
		if site == "cache.admit" {
			panic("admission fault")
		}
	})
	defer exec.Testing.ClearFailPoint()

	res, err := e.Run(Request{
		Table:      "lineitem",
		Sets:       sets,
		SharedScan: true,
		UseCache:   true,
		Retry:      RetryPolicy{MaxAttempts: 3, BaseBackoff: 100 * time.Microsecond},
	})
	if err != nil {
		t.Fatalf("Run with admission faults: %v", err)
	}
	if res.Report.Attempts < 2 {
		t.Fatalf("Attempts = %d, want a retry", res.Report.Attempts)
	}
	if n := e.ResultCache().Len(); n != 0 {
		t.Fatalf("%d entries admitted despite every admission panicking", n)
	}
	assertResultsMatch(t, li, sets, res.Report.Results)
}

// TestRetryFaultBreakerOpensAndRecovers drives a table's breaker through the
// full closed → open → half-open → closed cycle via Engine.Run.
func TestRetryFaultBreakerOpensAndRecovers(t *testing.T) {
	e, _ := newTestEngine(t, 1000)
	clk := time.Unix(0, 0)
	var clkMu atomic.Int64 // nanoseconds added to clk
	now := func() time.Time { return clk.Add(time.Duration(clkMu.Load())) }
	e.EnableBreakers(fault.Config{
		Window:      4,
		MinSamples:  2,
		FailureRate: 0.5,
		OpenFor:     time.Second,
		Now:         now,
	})

	var failing atomic.Bool
	failing.Store(true)
	exec.Testing.SetFailPoint(func(site string) {
		if site == "engine.step" && failing.Load() {
			panic("table down")
		}
	})
	defer exec.Testing.ClearFailPoint()

	req := Request{Table: "lineitem", Sets: retrySets()[:2]}
	// Two failing runs reach MinSamples at a 100% failure rate: trips.
	for i := 0; i < 2; i++ {
		if _, err := e.Run(req); err == nil {
			t.Fatal("failing run succeeded")
		}
	}
	_, err := e.Run(req)
	var oe *fault.OpenError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *fault.OpenError fail-fast", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("OpenError.RetryAfter = %v", oe.RetryAfter)
	}
	snaps := e.BreakerStates()
	if len(snaps) != 1 || snaps[0].State != fault.StateOpen {
		t.Fatalf("BreakerStates = %+v, want one open breaker", snaps)
	}

	// The table recovers; after the open interval the probe closes the breaker.
	failing.Store(false)
	clkMu.Store(int64(time.Second))
	if _, err := e.Run(req); err != nil {
		t.Fatalf("probe run after recovery: %v", err)
	}
	if snaps := e.BreakerStates(); snaps[0].State != fault.StateClosed {
		t.Fatalf("breaker after probe success = %v, want closed", snaps[0].State)
	}
	if _, err := e.Run(req); err != nil {
		t.Fatalf("run after breaker closed: %v", err)
	}
}
