package engine

import (
	"math/rand"
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/core"
	"gbmqo/internal/cost"
	"gbmqo/internal/table"
)

// chaosModel is a deterministic but arbitrary cost model: it makes the
// optimizer chase a meaningless objective, which drives it into diverse,
// deeply nested plan shapes — all of which must still execute to exactly the
// right answers. This is the plan-execution correctness property of the
// DESIGN.md test strategy.
type chaosModel struct {
	calls int
	seed  uint64
}

func (m *chaosModel) Name() string { return "chaos" }
func (m *chaosModel) Calls() int   { return m.calls }
func (m *chaosModel) ResetCalls()  { m.calls = 0 }

func (m *chaosModel) EdgeCost(e cost.Edge) float64 {
	m.calls++
	h := m.seed ^ uint64(e.Parent)*0x9e3779b97f4a7c15 ^ uint64(e.V)*0xbf58476d1ce4e5b9
	if e.ParentIsBase {
		h ^= 0x5555
	}
	if e.Materialize {
		h ^= 0xaaaa
	}
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	return float64(h%100_000) + 1
}

func TestQuickRandomPlanShapesExecuteCorrectly(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	// A 6-column table with mixed cardinalities and NULLs.
	tb := table.New("chaos", []table.ColumnDef{
		{Name: "c0", Typ: table.TInt64},
		{Name: "c1", Typ: table.TInt64},
		{Name: "c2", Typ: table.TString},
		{Name: "c3", Typ: table.TInt64},
		{Name: "c4", Typ: table.TDate},
		{Name: "c5", Typ: table.TInt64},
	})
	strs := []string{"p", "q", "r"}
	for i := 0; i < 4000; i++ {
		var c2 table.Value
		if r.Intn(9) == 0 {
			c2 = table.Null(table.TString)
		} else {
			c2 = table.Str(strs[r.Intn(3)])
		}
		tb.AppendRow(
			table.Int(int64(r.Intn(4))),
			table.Int(int64(r.Intn(11))),
			c2,
			table.Int(int64(r.Intn(2))),
			table.Date(int64(r.Intn(30))),
			table.Int(int64(r.Intn(6))),
		)
	}
	e := New(nil)
	e.Catalog().Register(tb)

	for trial := 0; trial < 15; trial++ {
		// Random required sets.
		nq := 3 + r.Intn(4)
		seen := map[colset.Set]bool{}
		var sets []colset.Set
		for len(sets) < nq {
			var s colset.Set
			for s.IsEmpty() {
				for c := 0; c < 6; c++ {
					if r.Intn(3) == 0 {
						s = s.Add(c)
					}
				}
			}
			if !seen[s] {
				seen[s] = true
				sets = append(sets, s)
			}
		}
		model := &chaosModel{seed: uint64(trial)*0x1234567 + 1}
		p, _, err := core.Optimize("chaos", tb.ColNames(), sets, core.Options{Model: model})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := p.Validate(sets); err != nil {
			t.Fatalf("trial %d: invalid plan: %v", trial, err)
		}
		report, err := NewExecutor(e.Catalog()).ExecutePlan(p, nil, nil)
		if err != nil {
			t.Fatalf("trial %d: execute: %v\n%s", trial, err, p)
		}
		assertResultsMatch(t, tb, sets, report.Results)

		// The same plan under shared-scan execution must agree too.
		report2, err := NewExecutor(e.Catalog()).ExecutePlanWith(p, nil, nil, ExecOptions{SharedScan: true})
		if err != nil {
			t.Fatalf("trial %d: shared execute: %v", trial, err)
		}
		assertResultsMatch(t, tb, sets, report2.Results)
	}
}

// TestPlanStorageAccounting verifies the executor records a positive peak
// whenever it retains temp tables, and that dropping is complete (a second
// identical run peaks at the same level, i.e. nothing leaked between runs).
func TestPlanStorageAccounting(t *testing.T) {
	e, _ := newTestEngine(t, 4000)
	sets := scSets()[:8]
	req := Request{Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO}
	first, err := e.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Report.TempTables > 0 && first.Report.PeakTempBytes <= 0 {
		t.Fatal("temp tables retained but no peak recorded")
	}
	second, err := e.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Report.PeakTempBytes != first.Report.PeakTempBytes {
		t.Fatalf("peak drifted between runs: %v then %v (temp leak?)",
			first.Report.PeakTempBytes, second.Report.PeakTempBytes)
	}
}
