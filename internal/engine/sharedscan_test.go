package engine

import (
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/datagen"
	"gbmqo/internal/index"
)

func TestSharedScanResultsIdentical(t *testing.T) {
	e, li := newTestEngine(t, 6000)
	sets := scSets()
	for _, strat := range []Strategy{StrategyNaive, StrategyGBMQO} {
		plain, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		shared, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: strat, SharedScan: true})
		if err != nil {
			t.Fatal(err)
		}
		assertResultsMatch(t, li, sets, shared.Report.Results)
		if shared.Report.QueriesRun != plain.Report.QueriesRun {
			t.Fatalf("%v: shared scan changed query count: %d vs %d",
				strat, shared.Report.QueriesRun, plain.Report.QueriesRun)
		}
		if shared.Report.RowsScanned >= plain.Report.RowsScanned {
			t.Fatalf("%v: shared scan did not reduce rows scanned: %d vs %d",
				strat, shared.Report.RowsScanned, plain.Report.RowsScanned)
		}
	}
}

func TestSharedScanNaiveCollapsesToOneScan(t *testing.T) {
	e, li := newTestEngine(t, 5000)
	sets := scSets()
	res, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: StrategyNaive, SharedScan: true})
	if err != nil {
		t.Fatal(err)
	}
	// All 12 naive queries share one pass over the base table.
	if res.Report.RowsScanned != int64(li.NumRows()) {
		t.Fatalf("rows scanned = %d, want one base scan (%d)", res.Report.RowsScanned, li.NumRows())
	}
}

func TestSharedScanSkipsIndexedQueries(t *testing.T) {
	e, li := newTestEngine(t, 5000)
	if err := e.Catalog().AddIndex(index.Build(li, "ix_sm", []int{datagen.LShipMode}, false)); err != nil {
		t.Fatal(err)
	}
	sets := []colset.Set{
		colset.Of(datagen.LShipMode),   // indexed: must use the O(#groups) path
		colset.Of(datagen.LReturnFlag), // unindexed
		colset.Of(datagen.LLineStatus), // unindexed
	}
	res, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: StrategyNaive, SharedScan: true})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, li, sets, res.Report.Results)
	// One shared scan for the two unindexed queries + #groups for the indexed
	// one: strictly fewer rows than two full scans.
	if res.Report.RowsScanned >= 2*int64(li.NumRows()) {
		t.Fatalf("rows scanned = %d", res.Report.RowsScanned)
	}
}

func TestSharedScanWithMixedAggregates(t *testing.T) {
	e, li := newTestEngine(t, 4000)
	sets := scSets()[:5]
	res, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO, SharedScan: true})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, li, sets, res.Report.Results)
}
