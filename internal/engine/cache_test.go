package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"gbmqo/internal/cache"
	"gbmqo/internal/colset"
	"gbmqo/internal/datagen"
	"gbmqo/internal/exec"
	"gbmqo/internal/stats"
	"gbmqo/internal/table"
)

// newCachedEngine is newTestEngine plus a result cache.
func newCachedEngine(t *testing.T, rows int, maxBytes int64) (*Engine, *table.Table) {
	t.Helper()
	e, li := newTestEngine(t, rows)
	e.SetCache(cache.New(cache.Config{MaxBytes: maxBytes}))
	return e, li
}

// tablesIdentical compares two result tables cell for cell, including row
// order — the cache must be invisible, down to first-appearance ordering.
func tablesIdentical(t *testing.T, label string, got, want *table.Table) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: got %v, want %v", label, got, want)
	}
	if got.NumRows() != want.NumRows() || got.NumCols() != want.NumCols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d",
			label, got.NumRows(), got.NumCols(), want.NumRows(), want.NumCols())
	}
	for c := 0; c < want.NumCols(); c++ {
		gc, wc := got.Col(c), want.Col(c)
		if gc.Name() != wc.Name() {
			t.Fatalf("%s: col %d named %q, want %q", label, c, gc.Name(), wc.Name())
		}
		for r := 0; r < want.NumRows(); r++ {
			gv, wv := gc.Value(r), wc.Value(r)
			if gv.Null != wv.Null || gv.String() != wv.String() {
				t.Fatalf("%s: cell (%d,%s) = %v, want %v", label, r, gc.Name(), gv, wv)
			}
		}
	}
}

// TestCacheDifferentialRandomized proves cache-served answers — exact hits,
// ancestor re-aggregations, and mixed served/computed batches — byte-identical
// to cold computation, over randomized grouping sets and aggregate lists.
func TestCacheDifferentialRandomized(t *testing.T) {
	e, _ := newCachedEngine(t, 6000, 64<<20)
	rng := rand.New(rand.NewSource(7))
	scCols := datagen.LineitemSC()
	aggPool := [][]exec.Agg{
		nil, // executor default COUNT(*)
		{exec.CountStar(), {Kind: exec.AggSum, Col: datagen.LQuantity, Name: "sum_qty"}},
		{exec.CountStar(),
			{Kind: exec.AggMin, Col: datagen.LShipDate, Name: "min_sd"},
			{Kind: exec.AggMax, Col: datagen.LShipDate, Name: "max_sd"}},
	}
	randSet := func() colset.Set {
		n := 1 + rng.Intn(3)
		cols := make([]int, 0, n)
		for len(cols) < n {
			c := scCols[rng.Intn(len(scCols))]
			dup := false
			for _, x := range cols {
				dup = dup || x == c
			}
			if !dup {
				cols = append(cols, c)
			}
		}
		return colset.Of(cols...)
	}
	for trial := 0; trial < 12; trial++ {
		var sets []colset.Set
		seen := map[colset.Set]bool{}
		for len(sets) < 2+rng.Intn(3) {
			s := randSet()
			if !seen[s] {
				seen[s] = true
				sets = append(sets, s)
			}
		}
		req := Request{Table: "lineitem", Sets: sets, Aggs: aggPool[rng.Intn(len(aggPool))]}

		coldReq := req
		coldReq.UseCache = false
		cold, err := e.Run(coldReq)
		if err != nil {
			t.Fatalf("trial %d cold: %v", trial, err)
		}
		req.UseCache = true
		warm, err := e.Run(req)
		if err != nil {
			t.Fatalf("trial %d warm: %v", trial, err)
		}
		again, err := e.Run(req)
		if err != nil {
			t.Fatalf("trial %d again: %v", trial, err)
		}
		cc := warm.Cache
		if cc.Hits+cc.AncestorHits+cc.Misses != len(sets) {
			t.Fatalf("trial %d: counters %+v do not cover %d sets", trial, cc, len(sets))
		}
		if again.Cache.Hits != len(sets) {
			t.Fatalf("trial %d: repeat run hit %d of %d sets", trial, again.Cache.Hits, len(sets))
		}
		for _, s := range sets {
			tablesIdentical(t, "warm vs cold "+s.String(), warm.Report.Results[s], cold.Report.Results[s])
			tablesIdentical(t, "repeat vs cold "+s.String(), again.Report.Results[s], cold.Report.Results[s])
		}
	}
}

// TestCacheAncestorReaggregation checks the lattice path end to end: a cached
// superset answers a strict-subset query by re-aggregation, the answer is
// byte-identical to cold computation, and the derived result is itself
// admitted so the next identical query is an exact hit.
func TestCacheAncestorReaggregation(t *testing.T) {
	e, _ := newCachedEngine(t, 6000, 64<<20)
	aggs := []exec.Agg{
		exec.CountStar(),
		{Kind: exec.AggSum, Col: datagen.LQuantity, Name: "sum_qty"},
		{Kind: exec.AggMin, Col: datagen.LShipDate, Name: "min_sd"},
	}
	super := colset.Of(datagen.LReturnFlag, datagen.LShipMode)
	sub := colset.Of(datagen.LShipMode)

	warm, err := e.Run(Request{Table: "lineitem", Sets: []colset.Set{super}, Aggs: aggs, UseCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.Misses != 1 || warm.Cache.Admissions == 0 {
		t.Fatalf("priming run: %+v", warm.Cache)
	}

	cold, err := e.Run(Request{Table: "lineitem", Sets: []colset.Set{sub}, Aggs: aggs, UseCache: false})
	if err != nil {
		t.Fatal(err)
	}
	derived, err := e.Run(Request{Table: "lineitem", Sets: []colset.Set{sub}, Aggs: aggs, UseCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if derived.Cache.AncestorHits != 1 || derived.Cache.Hits != 0 {
		t.Fatalf("derived run: %+v", derived.Cache)
	}
	if derived.Report.RowsScanned != 0 {
		t.Fatalf("ancestor derivation scanned %d base rows", derived.Report.RowsScanned)
	}
	tablesIdentical(t, "derived vs cold", derived.Report.Results[sub], cold.Report.Results[sub])

	exact, err := e.Run(Request{Table: "lineitem", Sets: []colset.Set{sub}, Aggs: aggs, UseCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Cache.Hits != 1 {
		t.Fatalf("derived result was not admitted: %+v", exact.Cache)
	}
	tablesIdentical(t, "exact vs cold", exact.Report.Results[sub], cold.Report.Results[sub])
}

// TestCacheAvgNeverDerivedFromAncestor: AVG cannot be rolled up through an
// intermediate, so an AVG query must bypass the ancestor path (and still be
// correct and cacheable as an exact entry).
func TestCacheAvgNeverDerivedFromAncestor(t *testing.T) {
	e, li := newCachedEngine(t, 4000, 64<<20)
	aggs := []exec.Agg{{Kind: exec.AggAvg, Col: datagen.LQuantity, Name: "avg_qty"}}
	super := colset.Of(datagen.LReturnFlag, datagen.LLineStatus)
	sub := colset.Of(datagen.LReturnFlag)
	if _, err := e.Run(Request{Table: "lineitem", Sets: []colset.Set{super}, Aggs: aggs, UseCache: true}); err != nil {
		t.Fatal(err)
	}
	cold, err := e.Run(Request{Table: "lineitem", Sets: []colset.Set{sub}, Aggs: aggs, UseCache: false})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(Request{Table: "lineitem", Sets: []colset.Set{sub}, Aggs: aggs, UseCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.AncestorHits != 0 || res.Cache.Misses != 1 {
		t.Fatalf("AVG query took the ancestor path: %+v", res.Cache)
	}
	tablesIdentical(t, "avg", res.Report.Results[sub], cold.Report.Results[sub])
	_ = li
}

// TestCacheStampedeComputesOnce runs N identical requests concurrently
// against a cold cache and checks the whole stampede did one run's worth of
// scanning: every request is answered either by the singleflight leader's
// computation or by entries it admitted, never by recomputing.
func TestCacheStampedeComputesOnce(t *testing.T) {
	baseline, li := newTestEngine(t, 8000)
	sets := govSets()
	coldRun, err := baseline.Run(Request{Table: "lineitem", Sets: sets})
	if err != nil {
		t.Fatal(err)
	}
	coldScanned := coldRun.Report.RowsScanned
	if coldScanned == 0 {
		t.Fatal("baseline run scanned nothing")
	}

	e := New(stats.NewService(stats.Exact, 0, 1))
	e.Catalog().Register(li)
	e.SetCache(cache.New(cache.Config{MaxBytes: 64 << 20}))

	const n = 8
	var (
		wg      sync.WaitGroup
		start   = make(chan struct{})
		results [n]*RunResult
		errs    [n]error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = e.Run(Request{Table: "lineitem", Sets: sets, UseCache: true})
		}(i)
	}
	close(start)
	wg.Wait()

	var total int64
	shared := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		total += results[i].Report.RowsScanned
		if results[i].Cache.FlightShared {
			shared++
		}
		assertResultsMatch(t, li, sets, results[i].Report.Results)
	}
	if total != coldScanned {
		t.Fatalf("stampede scanned %d rows total, one cold run scans %d (shared=%d)",
			total, coldScanned, shared)
	}
	if st := e.ResultCache().Snapshot(); st.FlightLeads < 1 {
		t.Fatalf("no flight leader recorded: %+v", st)
	}
}

// TestCacheInvalidationOnReregister: replacing the base table bumps its
// catalog version; stale entries must never serve and are swept.
func TestCacheInvalidationOnReregister(t *testing.T) {
	e, _ := newCachedEngine(t, 3000, 64<<20)
	sets := []colset.Set{colset.Of(datagen.LReturnFlag), colset.Of(datagen.LShipMode)}
	req := Request{Table: "lineitem", Sets: sets, UseCache: true}
	if _, err := e.Run(req); err != nil {
		t.Fatal(err)
	}
	if res, err := e.Run(req); err != nil || res.Cache.Hits != len(sets) {
		t.Fatalf("warm run: err=%v cache=%+v", err, res.Cache)
	}

	li2 := datagen.Lineitem(datagen.LineitemOpts{Rows: 2000, Seed: 99})
	e.Catalog().Register(li2)

	res, err := e.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Hits != 0 || res.Cache.AncestorHits != 0 {
		t.Fatalf("stale entries served after table mutation: %+v", res.Cache)
	}
	assertResultsMatch(t, li2, sets, res.Report.Results)
	if st := e.ResultCache().Snapshot(); st.Invalidations == 0 {
		t.Fatalf("no invalidations recorded: %+v", st)
	}
}

// TestCacheCancelNeverAdmitsPartial: a run cancelled mid-execution must
// surface the cancellation and leave the cache exactly as it was — nothing
// partially admitted (the admission happens only after a fully successful
// run).
func TestCacheCancelNeverAdmitsPartial(t *testing.T) {
	e, _ := newCachedEngine(t, 8000, 64<<20)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var steps atomic.Int64
	exec.Testing.SetFailPoint(func(site string) {
		if site == "engine.step" && steps.Add(1) == 2 {
			cancel()
		}
	})
	defer exec.Testing.ClearFailPoint()

	_, err := e.Run(Request{Table: "lineitem", Sets: govSets(), Context: ctx, UseCache: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := e.ResultCache().Len(); n != 0 {
		t.Fatalf("cancelled run admitted %d cache entries", n)
	}
	if st := e.ResultCache().Snapshot(); st.Admissions != 0 {
		t.Fatalf("cancelled run recorded admissions: %+v", st)
	}

	// The same request must now compute cleanly and only then populate the
	// cache.
	exec.Testing.ClearFailPoint()
	res, err := e.Run(Request{Table: "lineitem", Sets: govSets(), UseCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Admissions == 0 || e.ResultCache().Len() == 0 {
		t.Fatalf("clean rerun admitted nothing: %+v", res.Cache)
	}
}

// TestCacheBudgetShrinksBeforeExecution: under a memory budget the cache
// yields residency first (to at most half the budget) and the run still
// completes correctly.
func TestCacheBudgetShrinksBeforeExecution(t *testing.T) {
	e, li := newCachedEngine(t, 8000, 64<<20)
	sets := govSets()
	if _, err := e.Run(Request{Table: "lineitem", Sets: sets, UseCache: true}); err != nil {
		t.Fatal(err)
	}
	resident := e.ResultCache().Bytes()
	if resident == 0 {
		t.Fatal("warming run cached nothing")
	}

	// A budget whose half is below current residency forces evictions before
	// execution; disjoint sets so the run cannot be served from the cache.
	budget := resident // shrink target = resident/2 < resident
	other := []colset.Set{colset.Of(datagen.LShipInstruct), colset.Of(datagen.LLineNumber)}
	res, err := e.Run(Request{Table: "lineitem", Sets: other, MemBudget: budget, UseCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Evictions == 0 {
		t.Fatalf("no evictions under memory pressure: %+v", res.Cache)
	}
	assertResultsMatch(t, li, other, res.Report.Results)
}

// TestCacheBypasses: UseCache=false and ephemeral ("__"-prefixed) source
// tables must never touch the cache.
func TestCacheBypasses(t *testing.T) {
	e, li := newCachedEngine(t, 2000, 64<<20)
	res, err := e.Run(Request{Table: "lineitem", Sets: govSets()[:2], UseCache: false})
	if err != nil {
		t.Fatal(err)
	}
	if (res.Cache != CacheCounters{}) || e.ResultCache().Len() != 0 {
		t.Fatalf("UseCache=false touched the cache: %+v", res.Cache)
	}

	eph := li.Project("__where_0", []int{datagen.LReturnFlag, datagen.LLineStatus})
	e.Catalog().Register(eph)
	res, err = e.Run(Request{Table: "__where_0", Sets: []colset.Set{colset.Of(0)}, UseCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if (res.Cache != CacheCounters{}) || e.ResultCache().Len() != 0 {
		t.Fatalf("ephemeral table touched the cache: %+v", res.Cache)
	}
}
