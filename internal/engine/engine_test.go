package engine

import (
	"math/rand"
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/core"
	"gbmqo/internal/datagen"
	"gbmqo/internal/exec"
	"gbmqo/internal/index"
	"gbmqo/internal/plan"
	"gbmqo/internal/stats"
	"gbmqo/internal/table"
)

// newTestEngine registers a small lineitem table.
func newTestEngine(t *testing.T, rows int) (*Engine, *table.Table) {
	t.Helper()
	e := New(stats.NewService(stats.Exact, 0, 1))
	li := datagen.Lineitem(datagen.LineitemOpts{Rows: rows, Seed: 42})
	e.Catalog().Register(li)
	return e, li
}

// groupCounts computes the reference COUNT(*) map for a grouping set.
func groupCounts(t *table.Table, set colset.Set) map[string]int64 {
	cols := set.Columns()
	out := map[string]int64{}
	for i := 0; i < t.NumRows(); i++ {
		k := ""
		for _, c := range cols {
			v := t.Col(c).Value(i)
			k += "|" + v.String()
			if v.Null {
				k += "\x00"
			}
		}
		out[k]++
	}
	return out
}

// resultCounts extracts the COUNT map from a result table whose group columns
// are named like the base's.
func resultCounts(base, res *table.Table, set colset.Set) map[string]int64 {
	cols := set.Columns()
	out := map[string]int64{}
	cnt := res.ColByName("cnt")
	for i := 0; i < res.NumRows(); i++ {
		k := ""
		for _, c := range cols {
			col := res.ColByName(base.Col(c).Name())
			v := col.Value(i)
			k += "|" + v.String()
			if v.Null {
				k += "\x00"
			}
		}
		out[k] += cnt.Value(i).I
	}
	return out
}

func assertResultsMatch(t *testing.T, base *table.Table, sets []colset.Set, results map[colset.Set]*table.Table) {
	t.Helper()
	for _, set := range sets {
		res, ok := results[set]
		if !ok {
			t.Fatalf("no result for %s", set)
		}
		want := groupCounts(base, set)
		got := resultCounts(base, res, set)
		if len(got) != len(want) {
			t.Fatalf("set %s: %d groups, want %d", set, len(got), len(want))
		}
		for k, w := range want {
			if got[k] != w {
				t.Fatalf("set %s group %q: count %d, want %d", set, k, got[k], w)
			}
		}
	}
}

func scSets() []colset.Set {
	var out []colset.Set
	for _, c := range datagen.LineitemSC() {
		out = append(out, colset.Of(c))
	}
	return out
}

func TestAllStrategiesProduceIdenticalResults(t *testing.T) {
	e, li := newTestEngine(t, 4000)
	sets := scSets()[:7] // keep exhaustive feasible
	for _, strat := range []Strategy{StrategyNaive, StrategyGroupingSets, StrategyGBMQO, StrategyExhaustive} {
		res, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: strat})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		assertResultsMatch(t, li, sets, res.Report.Results)
	}
}

func TestGBMQOScansFewerRowsThanNaive(t *testing.T) {
	e, _ := newTestEngine(t, 20_000)
	sets := scSets()
	naive, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: StrategyNaive})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Report.RowsScanned >= naive.Report.RowsScanned {
		t.Fatalf("GB-MQO scanned %d rows, naive %d\n%s",
			opt.Report.RowsScanned, naive.Report.RowsScanned, opt.Plan)
	}
	if opt.Report.TempTables == 0 || opt.Report.PeakTempBytes <= 0 {
		t.Fatalf("expected materialized intermediates: %+v", opt.Report)
	}
	if naive.Report.TempTables != 0 {
		t.Fatal("naive plan materialized intermediates")
	}
}

func TestCONTWorkloadMatches(t *testing.T) {
	e, li := newTestEngine(t, 5000)
	var sets []colset.Set
	for _, cols := range datagen.LineitemCONT() {
		sets = append(sets, colset.Of(cols...))
	}
	for _, strat := range []Strategy{StrategyGroupingSets, StrategyGBMQO} {
		res, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: strat})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		assertResultsMatch(t, li, sets, res.Report.Results)
	}
}

func TestIndexFastPathCorrectAndCheaper(t *testing.T) {
	e, li := newTestEngine(t, 10_000)
	set := colset.Of(datagen.LShipMode)
	before, err := e.Run(Request{Table: "lineitem", Sets: []colset.Set{set}, Strategy: StrategyNaive})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Catalog().AddIndex(index.Build(li, "ix_shipmode", []int{datagen.LShipMode}, false)); err != nil {
		t.Fatal(err)
	}
	after, err := e.Run(Request{Table: "lineitem", Sets: []colset.Set{set}, Strategy: StrategyNaive})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, li, []colset.Set{set}, after.Report.Results)
	if after.Report.RowsScanned >= before.Report.RowsScanned {
		t.Fatalf("index did not reduce rows scanned: %d vs %d",
			after.Report.RowsScanned, before.Report.RowsScanned)
	}
}

func TestIndexStreamPathCorrect(t *testing.T) {
	e, li := newTestEngine(t, 8000)
	// Index on (shipdate, shipmode): Group By (shipdate) is a prefix match.
	if err := e.Catalog().AddIndex(index.Build(li, "ix_sd_sm", []int{datagen.LShipDate, datagen.LShipMode}, false)); err != nil {
		t.Fatal(err)
	}
	set := colset.Of(datagen.LShipDate)
	res, err := e.Run(Request{Table: "lineitem", Sets: []colset.Set{set}, Strategy: StrategyNaive})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, li, []colset.Set{set}, res.Report.Results)
}

func TestMultipleAggregatesThroughPlan(t *testing.T) {
	e, li := newTestEngine(t, 6000)
	aggs := []exec.Agg{
		exec.CountStar(),
		{Kind: exec.AggSum, Col: datagen.LQuantity, Name: "sum_qty"},
		{Kind: exec.AggMin, Col: datagen.LShipDate, Name: "min_ship"},
		{Kind: exec.AggMax, Col: datagen.LShipDate, Name: "max_ship"},
	}
	sets := []colset.Set{
		colset.Of(datagen.LReturnFlag),
		colset.Of(datagen.LLineStatus),
		colset.Of(datagen.LReturnFlag, datagen.LLineStatus),
	}
	res, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO, Aggs: aggs})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check one set against direct evaluation.
	direct := exec.GroupByHash(li, []int{datagen.LReturnFlag}, aggs, "direct")
	got := res.Report.Results[colset.Of(datagen.LReturnFlag)]
	if got.NumRows() != direct.NumRows() {
		t.Fatalf("group count %d vs %d", got.NumRows(), direct.NumRows())
	}
	byFlag := func(tb *table.Table) map[string][]table.Value {
		m := map[string][]table.Value{}
		for i := 0; i < tb.NumRows(); i++ {
			m[tb.ColByName("l_returnflag").Value(i).S] = []table.Value{
				tb.ColByName("cnt").Value(i),
				tb.ColByName("sum_qty").Value(i),
				tb.ColByName("min_ship").Value(i),
				tb.ColByName("max_ship").Value(i),
			}
		}
		return m
	}
	d, g := byFlag(direct), byFlag(got)
	for k, dv := range d {
		gv, ok := g[k]
		if !ok {
			t.Fatalf("flag %q missing", k)
		}
		for i := range dv {
			if !dv[i].Equal(gv[i]) {
				t.Fatalf("flag %q agg %d: %v vs %v", k, i, gv[i], dv[i])
			}
		}
	}
}

func TestCubePlanExecution(t *testing.T) {
	e, li := newTestEngine(t, 5000)
	// Hand-build a CUBE plan over (returnflag, linestatus) and execute it.
	cub := plan.NewNode(colset.Of(datagen.LReturnFlag, datagen.LLineStatus), true)
	cub.Op = plan.OpCube
	a := plan.NewNode(colset.Of(datagen.LReturnFlag), true)
	b := plan.NewNode(colset.Of(datagen.LLineStatus), true)
	cub.Children = []*plan.Node{a, b}
	p := &plan.Plan{BaseName: "lineitem", ColNames: li.ColNames(), Roots: []*plan.Node{cub}}
	report, err := NewExecutor(e.Catalog()).ExecutePlan(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sets := []colset.Set{cub.Set, a.Set, b.Set}
	assertResultsMatch(t, li, sets, report.Results)
}

func TestRollupPlanExecution(t *testing.T) {
	e, li := newTestEngine(t, 5000)
	roll := plan.NewNode(colset.Of(datagen.LReturnFlag, datagen.LLineStatus), true)
	roll.Op = plan.OpRollup
	roll.RollupOrder = []int{datagen.LReturnFlag, datagen.LLineStatus}
	a := plan.NewNode(colset.Of(datagen.LReturnFlag), true)
	roll.Children = []*plan.Node{a}
	p := &plan.Plan{BaseName: "lineitem", ColNames: li.ColNames(), Roots: []*plan.Node{roll}}
	report, err := NewExecutor(e.Catalog()).ExecutePlan(p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, li, []colset.Set{roll.Set, a.Set}, report.Results)
}

func TestGBMQOWithCubeRollupOptionStillCorrect(t *testing.T) {
	e, li := newTestEngine(t, 4000)
	var sets []colset.Set
	colset.Of(datagen.LReturnFlag, datagen.LLineStatus, datagen.LShipMode).Subsets(func(s colset.Set) bool {
		if !s.IsEmpty() {
			sets = append(sets, s)
		}
		return true
	})
	res, err := e.Run(Request{
		Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO,
		Core: core.Options{ConsiderCubeRollup: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, li, sets, res.Report.Results)
}

func TestCardinalityModelStrategy(t *testing.T) {
	e, li := newTestEngine(t, 4000)
	sets := scSets()[:5]
	res, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO, Model: ModelCardinality})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, li, sets, res.Report.Results)
	if res.ModelUsd.Name() != "cardinality" {
		t.Fatalf("model = %q", res.ModelUsd.Name())
	}
}

func TestStorageBudgetRequest(t *testing.T) {
	e, li := newTestEngine(t, 4000)
	sets := scSets()[:6]
	res, err := e.Run(Request{
		Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO,
		Core: core.Options{StorageBudget: 1}, // ~nothing fits
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.TempTables != 0 {
		t.Fatalf("budget ignored: %d temp tables", res.Report.TempTables)
	}
	assertResultsMatch(t, li, sets, res.Report.Results)
}

func TestRunErrors(t *testing.T) {
	e, _ := newTestEngine(t, 100)
	if _, err := e.Run(Request{Table: "nope", Sets: scSets()[:1]}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := e.Run(Request{Table: "lineitem", Sets: scSets()[:1], Strategy: Strategy(99)}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := e.exec.ExecutePlan(&plan.Plan{BaseName: "nope"}, nil, nil); err == nil {
		t.Error("executor accepted unknown base")
	}
}

func TestQuickRandomWorkloadsAcrossStrategies(t *testing.T) {
	e, li := newTestEngine(t, 3000)
	r := rand.New(rand.NewSource(7))
	cands := datagen.LineitemSC()
	for trial := 0; trial < 6; trial++ {
		seen := map[colset.Set]bool{}
		var sets []colset.Set
		n := 2 + r.Intn(4)
		for len(sets) < n {
			var s colset.Set
			width := 1 + r.Intn(2)
			for s.Len() < width {
				s = s.Add(cands[r.Intn(len(cands))])
			}
			if !seen[s] {
				seen[s] = true
				sets = append(sets, s)
			}
		}
		for _, strat := range []Strategy{StrategyNaive, StrategyGroupingSets, StrategyGBMQO} {
			res, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: strat})
			if err != nil {
				t.Fatalf("trial %d %v (%v): %v", trial, strat, sets, err)
			}
			assertResultsMatch(t, li, sets, res.Report.Results)
		}
	}
}

func TestStrategyAndModelStrings(t *testing.T) {
	names := map[Strategy]string{
		StrategyNaive: "naive", StrategyGroupingSets: "groupingsets",
		StrategyGBMQO: "gbmqo", StrategyExhaustive: "exhaustive",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}
