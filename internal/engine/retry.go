package engine

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"gbmqo/internal/exec"
	"gbmqo/internal/fault"
)

// RetryPolicy bounds the engine's retry loop for one request. The zero value
// disables retries entirely (every existing caller keeps single-attempt
// semantics); front-ends that want resilience opt in per request.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget including the first try.
	// Values ≤ 1 disable retries.
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each further retry
	// doubles it (plus up to 50% jitter, so synchronized failures do not
	// retry in lockstep). 0 selects 1ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. 0 selects 100ms.
	MaxBackoff time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	return p
}

// backoff computes the jittered sleep after failed attempt n (1-based).
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < n && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// RetryAttempt attributes one failed-and-retried attempt in an ExecReport:
// which attempt failed, why, how it was classified, how long the loop backed
// off, and which degraded modes the following attempt ran under.
type RetryAttempt struct {
	// Attempt is the 1-based index of the attempt that failed.
	Attempt int
	// Err is the failure that triggered the retry.
	Err error
	// Class is its classification (always exec.ClassTransient — other classes
	// are not retried).
	Class exec.ErrClass
	// Backoff is the jittered sleep taken before the next attempt.
	Backoff time.Duration
	// Degraded lists the degradation-ladder modes applied to the next attempt
	// ("sequential", "unshared", "no-retain", "no-cache").
	Degraded []string
}

// degradeForAttempt descends the degradation ladder for retry attempt n
// (2-based: the first retry). The first retry drops intra-operator and
// sub-plan parallelism — a poisoned morsel worker cannot poison a sequential
// pass; further retries also drop shared scans, temp retention and the cache,
// reducing the run to the simplest, most isolated form that can still answer.
func degradeForAttempt(req Request, n int) (Request, []string) {
	cur := req
	var modes []string
	if n >= 2 {
		cur.Parallel = false
		cur.Parallelism = 0
		modes = append(modes, "sequential")
	}
	if n >= 3 {
		cur.SharedScan = false
		cur.NoRetain = true
		cur.UseCache = false
		modes = append(modes, "unshared", "no-retain", "no-cache")
	}
	return cur, modes
}

// DegradeForAttempt exposes the retry degradation ladder to coordinators that
// own their retry loops (internal/shard): attempt n (1-based, so n ≥ 2 is a
// retry) returns the request with the ladder's modes applied plus their
// names, exactly as the engine's own retry loop would run it.
func DegradeForAttempt(req Request, n int) (Request, []string) {
	return degradeForAttempt(req, n)
}

// runSafe is e.run behind a panic barrier. ExecutePlanWith already recovers
// operator panics, but the surrounding machinery — cache admission, promotion
// hooks, report assembly — runs outside that boundary; a panic there becomes
// a typed transient error instead of killing the submitter goroutine.
func (e *Engine) runSafe(req Request) (res *RunResult, err error) {
	defer func() {
		if pnc := recover(); pnc != nil {
			res = nil
			err = &exec.ExecError{Step: "engine.run", Err: recoveredPanic(pnc)}
		}
	}()
	return e.run(req)
}

// runWithRetry is the engine-boundary resilience loop: consult the table's
// circuit breaker, attempt the request, classify failures, and retry
// transient ones under the request's RetryPolicy — each retry one rung down
// the degradation ladder. Every attempt's outcome feeds the breaker (caller
// cancellations excepted: they say nothing about the table's health).
func (e *Engine) runWithRetry(req Request) (*RunResult, error) {
	br := e.breakerFor(req.Table)
	if err := br.Allow(); err != nil {
		return nil, err
	}
	pol := req.Retry.withDefaults()
	var attempts []RetryAttempt
	cur := req
	for attempt := 1; ; attempt++ {
		// A shard router, when installed, is offered each attempt first: it
		// owns scatter-gather resilience inside the attempt (per-shard
		// retries, hedging, partial results), while coordinator-level
		// transient failures still descend this request-scope loop. Returning
		// handled=false (request not shardable) falls through to the local
		// engine.
		var res *RunResult
		var err error
		handled := false
		if rp := e.router.Load(); rp != nil {
			res, err, handled = (*rp)(cur)
		}
		if !handled {
			res, err = e.runSafe(cur)
		}
		if err == nil {
			br.Record(false)
			res.Report.Attempts = attempt
			res.Report.Retries = attempts
			return res, nil
		}
		class := exec.Classify(err)
		if class != exec.ClassCaller {
			br.RecordErr(err)
		}
		if class != exec.ClassTransient || attempt >= req.Retry.MaxAttempts {
			return nil, err
		}
		backoff := pol.backoff(attempt)
		var modes []string
		cur, modes = degradeForAttempt(req, attempt+1)
		attempts = append(attempts, RetryAttempt{
			Attempt:  attempt,
			Err:      err,
			Class:    class,
			Backoff:  backoff,
			Degraded: modes,
		})
		ctx := req.Context
		if ctx == nil {
			ctx = context.Background()
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// breakerSet lazily materializes one circuit breaker per base table.
type breakerSet struct {
	cfg fault.Config
	mu  sync.Mutex
	m   map[string]*fault.Breaker
}

func (s *breakerSet) get(name string) *fault.Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[name]
	if !ok {
		b = fault.New(name, s.cfg)
		s.m[name] = b
	}
	return b
}

func (s *breakerSet) snapshots() []fault.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]fault.Snapshot, 0, len(s.m))
	for _, b := range s.m {
		out = append(out, b.Snapshot())
	}
	return out
}

// EnableBreakers installs per-table circuit breakers with the given config;
// every subsequent Run consults its table's breaker before executing.
// Breakers are off by default — existing fault-injection tests and
// single-shot callers keep fail-every-time semantics.
func (e *Engine) EnableBreakers(cfg fault.Config) {
	e.breakers.Store(&breakerSet{cfg: cfg, m: map[string]*fault.Breaker{}})
}

// DisableBreakers removes the breaker layer.
func (e *Engine) DisableBreakers() { e.breakers.Store(nil) }

// BreakerStates snapshots every materialized breaker, sorted by nothing in
// particular — callers (e.g. /healthz) index by Name. Nil when breakers are
// disabled or no table has been touched yet.
func (e *Engine) BreakerStates() []fault.Snapshot {
	s := e.breakers.Load()
	if s == nil {
		return nil
	}
	return s.snapshots()
}

// breakerFor returns the breaker guarding table name, or nil (no-op) when
// breakers are disabled.
func (e *Engine) breakerFor(name string) *fault.Breaker {
	s := e.breakers.Load()
	if s == nil {
		return nil
	}
	return s.get(name)
}
