package engine

import (
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/datagen"
	"gbmqo/internal/exec"
	"gbmqo/internal/table"
)

// TestPerSetAggregatesUnionMethod exercises the §7.2 extension: different
// queries request different aggregates; intermediates carry the union; each
// result comes back with exactly its own aggregates, with values matching
// direct evaluation.
func TestPerSetAggregatesUnionMethod(t *testing.T) {
	e, li := newTestEngine(t, 6000)
	flag := colset.Of(datagen.LReturnFlag)
	status := colset.Of(datagen.LLineStatus)
	pair := colset.Of(datagen.LReturnFlag, datagen.LLineStatus)

	perSet := map[colset.Set][]exec.Agg{
		flag:   {exec.CountStar(), {Kind: exec.AggSum, Col: datagen.LQuantity, Name: "sq"}},
		status: {{Kind: exec.AggMin, Col: datagen.LShipDate, Name: "mn"}, exec.CountStar()},
		pair:   {exec.CountStar()},
	}
	res, err := e.Run(Request{
		Table:      "lineitem",
		Sets:       []colset.Set{flag, status, pair},
		Strategy:   StrategyGBMQO,
		PerSetAggs: perSet,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Each result carries exactly its own columns.
	checkCols := func(set colset.Set, want []string) {
		t.Helper()
		res := res.Report.Results[set]
		if res == nil {
			t.Fatalf("no result for %s", set)
		}
		got := res.ColNames()
		if len(got) != len(want) {
			t.Fatalf("set %s columns = %v, want %v", set, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("set %s columns = %v, want %v", set, got, want)
			}
		}
	}
	checkCols(flag, []string{"l_returnflag", "cnt", "sq"})
	checkCols(status, []string{"l_linestatus", "mn", "cnt"})
	checkCols(pair, []string{"l_returnflag", "l_linestatus", "cnt"})

	// Values must match direct evaluation.
	direct := exec.GroupByHash(li, []int{datagen.LReturnFlag}, perSet[flag], "d")
	got := res.Report.Results[flag]
	if got.NumRows() != direct.NumRows() {
		t.Fatalf("flag rows %d vs %d", got.NumRows(), direct.NumRows())
	}
	collect := func(tb *table.Table) map[string][2]table.Value {
		m := map[string][2]table.Value{}
		for i := 0; i < tb.NumRows(); i++ {
			m[tb.ColByName("l_returnflag").Value(i).S] = [2]table.Value{
				tb.ColByName("cnt").Value(i), tb.ColByName("sq").Value(i),
			}
		}
		return m
	}
	d, g := collect(direct), collect(got)
	for k, dv := range d {
		gv := g[k]
		if !dv[0].Equal(gv[0]) || !dv[1].Equal(gv[1]) {
			t.Fatalf("flag %q: %v vs %v", k, gv, dv)
		}
	}

	// The MIN aggregate must also survive the rollup path.
	directMin := exec.GroupByHash(li, []int{datagen.LLineStatus}, perSet[status], "d2")
	gotMin := res.Report.Results[status]
	mins := func(tb *table.Table) map[string]table.Value {
		m := map[string]table.Value{}
		for i := 0; i < tb.NumRows(); i++ {
			m[tb.ColByName("l_linestatus").Value(i).S] = tb.ColByName("mn").Value(i)
		}
		return m
	}
	dm, gm := mins(directMin), mins(gotMin)
	for k, v := range dm {
		if !v.Equal(gm[k]) {
			t.Fatalf("status %q min: %v vs %v", k, gm[k], v)
		}
	}
}

func TestPerSetAggregatesWithSharedScan(t *testing.T) {
	e, li := newTestEngine(t, 4000)
	flag := colset.Of(datagen.LReturnFlag)
	mode := colset.Of(datagen.LShipMode)
	perSet := map[colset.Set][]exec.Agg{
		flag: {exec.CountStar()},
		mode: {{Kind: exec.AggMax, Col: datagen.LQuantity, Name: "mx"}},
	}
	res, err := e.Run(Request{
		Table: "lineitem", Sets: []colset.Set{flag, mode},
		Strategy: StrategyNaive, PerSetAggs: perSet, SharedScan: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	direct := exec.GroupByHash(li, []int{datagen.LShipMode}, perSet[mode], "d")
	got := res.Report.Results[mode]
	if got.NumRows() != direct.NumRows() {
		t.Fatalf("rows %d vs %d", got.NumRows(), direct.NumRows())
	}
	if got.ColIndex("mx") < 0 || got.ColIndex("cnt") >= 0 {
		t.Fatalf("projection wrong: %v", got.ColNames())
	}
}

func TestPerSetAggsFallbackToDefault(t *testing.T) {
	e, li := newTestEngine(t, 3000)
	flag := colset.Of(datagen.LReturnFlag)
	mode := colset.Of(datagen.LShipMode)
	// Only one set customized; the other falls back to COUNT(*).
	res, err := e.Run(Request{
		Table: "lineitem", Sets: []colset.Set{flag, mode},
		Strategy: StrategyGBMQO,
		PerSetAggs: map[colset.Set][]exec.Agg{
			flag: {exec.CountStar(), {Kind: exec.AggSum, Col: datagen.LQuantity, Name: "sq"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, li, []colset.Set{mode}, map[colset.Set]*table.Table{mode: res.Report.Results[mode]})
	if res.Report.Results[flag].ColIndex("sq") < 0 {
		t.Fatal("customized set lost its aggregate")
	}
}
