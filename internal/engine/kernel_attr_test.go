package engine

import (
	"strings"
	"testing"
)

// TestReportAttributesKernels pins the per-node kernel attribution: a
// parallel run over a dense-eligible table must record one KernelUse per
// computed node, pick the dense kernel for at least one base-level node, and
// annotate the returned plan with the kernel names.
func TestReportAttributesKernels(t *testing.T) {
	e, _ := newTestEngine(t, 70000)
	res, err := e.Run(Request{
		Table:       "lineitem",
		Sets:        govSets(),
		Strategy:    StrategyGBMQO,
		Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if len(rep.Kernels) == 0 {
		t.Fatal("no kernel attribution recorded")
	}
	seen := map[string]string{}
	kinds := map[string]int{}
	for _, ku := range rep.Kernels {
		if prev, dup := seen[ku.Node]; dup {
			t.Errorf("node %s attributed twice (%s then %s)", ku.Node, prev, ku.Kernel)
		}
		seen[ku.Node] = ku.Kernel
		kinds[ku.Kernel]++
		if ku.Kernel == "" || ku.Rows < 0 {
			t.Errorf("malformed attribution %+v", ku)
		}
	}
	for _, set := range govSets() {
		if _, ok := seen[set.String()]; !ok {
			t.Errorf("required node %s has no kernel attribution", set)
		}
	}
	if kinds["dense"] == 0 {
		t.Errorf("no node ran the dense kernel over a 70k-row low-NDV table: %v", kinds)
	}
	planStr := res.Plan.String()
	if !strings.Contains(planStr, "<dense") && !strings.Contains(planStr, "<hash") {
		t.Errorf("plan not annotated with kernels:\n%s", planStr)
	}
}

// TestSequentialRunsKeepHashLadder pins the chooser policy at the engine
// level: without intra-operator parallelism the parallel-regime kernels
// (dense, radix) must not run, so sequential experiment measurements keep
// their pre-kernel behaviour.
func TestSequentialRunsKeepHashLadder(t *testing.T) {
	e, _ := newTestEngine(t, 70000)
	res, err := e.Run(Request{Table: "lineitem", Sets: govSets(), Strategy: StrategyGBMQO})
	if err != nil {
		t.Fatal(err)
	}
	for _, ku := range res.Report.Kernels {
		if ku.Kernel == "dense" || ku.Kernel == "radix" {
			t.Errorf("sequential run used parallel-regime kernel: %s", ku)
		}
	}
}

// TestKernelFallbackDegradation pins the admission ladder: a budget too small
// for the dense kernel's per-worker arrays must record a kernel-fallback
// degradation and still complete on a lower rung with correct results.
func TestKernelFallbackDegradation(t *testing.T) {
	e, li := newTestEngine(t, 70000)
	res, err := e.Run(Request{
		Table:       "lineitem",
		Sets:        govSets(),
		Strategy:    StrategyGBMQO,
		Parallelism: 4,
		MemBudget:   200 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawFallback bool
	for _, d := range res.Report.Degradations {
		if d.Kind == DegradeKernelFallback {
			sawFallback = true
			if !strings.Contains(d.Detail, "fell back to") {
				t.Errorf("fallback detail %q does not name the fallback rung", d.Detail)
			}
		}
	}
	if !sawFallback {
		t.Fatalf("no kernel-fallback degradation under a 200KiB budget; got %v", res.Report.Degradations)
	}
	// Results must match an unconstrained sequential run exactly.
	ref, err := e.Run(Request{Table: "lineitem", Sets: govSets(), Strategy: StrategyGBMQO})
	if err != nil {
		t.Fatal(err)
	}
	_ = li
	assertSameResults(t, ref.Report.Results, res.Report.Results)
}
