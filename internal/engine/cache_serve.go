package engine

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"gbmqo/internal/cache"
	"gbmqo/internal/catalog"
	"gbmqo/internal/colset"
	"gbmqo/internal/cost"
	"gbmqo/internal/exec"
	"gbmqo/internal/plan"
	"gbmqo/internal/table"
)

// CacheCounters reports how the cross-query result cache served one request.
type CacheCounters struct {
	// Hits counts grouping sets answered from an exact cached entry.
	Hits int
	// AncestorHits counts sets answered by re-aggregating a cached lattice
	// ancestor (a superset grouping) instead of recomputing from base.
	AncestorHits int
	// Misses counts sets that had to be computed by the planner.
	Misses int
	// Admissions counts entries this request added to the cache (results,
	// promoted temp tables, and derived ancestor re-aggregations).
	Admissions int
	// FlightShared reports that this request's residual computation was
	// deduplicated onto a concurrent identical request — the work counters of
	// the report are then zero, because another run did the work.
	FlightShared bool
	// Refreshes is the cache's cumulative count of entries rolled forward by
	// append maintenance (Refresh) after the request.
	Refreshes int64
	// Evictions is the cache's cumulative eviction count after the request;
	// Bytes and Entries are its residency after the request.
	Evictions int64
	Bytes     int64
	Entries   int
}

// runCached serves a request through the result cache: every requested
// grouping set is answered from an exact cached entry when one exists, else
// re-aggregated from the cheapest cached lattice ancestor (a superset
// grouping, priced with the request's cost model exactly like the paper
// prices parent edges — the smallest-parent rule applied to the cache), and
// only the remaining sets are planned and executed. The residual execution is
// deduplicated through singleflight so concurrent identical requests compute
// once, and on success its results and dropped temp tables are offered to the
// cache. Nothing is admitted on a cancelled or failed run.
func (e *Engine) runCached(req Request) (*RunResult, error) {
	base, ep, ok := e.cat.TableEpoch(req.Table)
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", req.Table)
	}
	start := time.Now()
	if n := e.cache.InvalidateBelow(req.Table, ep.Version, ep.Delta); n > 0 {
		// Entries died with their epoch; statistics built over the dead
		// snapshot are reclaimed in the same breath (they self-heal on lookup
		// anyway, but sweeping here bounds the leak under version churn).
		e.cat.Stats().DropStale(req.Table, base)
	}

	env := cost.NewEnv(base, e.cat.Stats(), e.cat.Indexes(req.Table))
	var model cost.Model
	if req.Model == ModelCardinality {
		model = cost.NewCardinality(env)
	} else {
		model = cost.NewOptimizer(env, cost.Coefficients{})
	}

	// MemBudget participation: the cache yields memory before operators
	// degrade. It is shrunk to at most half the budget up front, and whatever
	// it still holds is subtracted from what execution may use.
	execBudget := req.MemBudget
	if req.MemBudget > 0 {
		e.cache.ShrinkTo(req.MemBudget / 2)
		execBudget = req.MemBudget - e.cache.Bytes()
	}

	var counters CacheCounters
	served := map[colset.Set]*table.Table{}
	origins := make(map[colset.Set]SetOrigin, len(req.Sets))
	var missed []colset.Set
	for _, s := range req.Sets {
		aggs := requestAggs(req, s)
		key := cache.KeyOf(req.Table, ep.Version, ep.Delta, s, aggs)
		if t, ok := e.cache.Get(key); ok {
			served[s] = t
			origins[s] = OriginCacheHit
			counters.Hits++
			continue
		}
		t, admissions, err := e.deriveFromAncestor(req, base, ep, s, aggs, model)
		if err != nil {
			return nil, err
		}
		if t != nil {
			served[s] = t
			origins[s] = OriginCacheAncestor
			counters.AncestorHits++
			counters.Admissions += admissions
			e.noteLazyServed(req.Table)
			continue
		}
		e.cache.NoteMiss()
		counters.Misses++
		missed = append(missed, s)
	}

	var lead *residualOutcome
	if len(missed) > 0 {
		rkey := residualKey(req, ep, missed)
		sub := req
		sub.Sets = missed
		sub.UseCache = false
		sub.MemBudget = execBudget
		val, err, shared := e.cache.Do(rkey, func() (any, error) {
			return e.runResidual(sub, ep, model)
		})
		if err != nil {
			return nil, err
		}
		lead = val.(*residualOutcome)
		counters.FlightShared = shared
		if !shared {
			counters.Admissions += lead.admissions
		}
	}

	// Assemble a fresh report: the residual outcome is shared with concurrent
	// followers, so its maps are never mutated — results are copied out. A
	// follower's report carries only Results (the leader's report owns the
	// work counters, so totals across a stampede equal one cold run).
	report := &ExecReport{Results: make(map[colset.Set]*table.Table, len(req.Sets))}
	out := &RunResult{Report: report, ModelUsd: model}
	if lead != nil {
		if !counters.FlightShared {
			shallow := *lead.res.Report
			report = &shallow
			report.Results = make(map[colset.Set]*table.Table, len(req.Sets))
			out.Report = report
		}
		for s, t := range lead.res.Report.Results {
			report.Results[s] = t
		}
		out.Plan = lead.res.Plan
		out.Search = lead.res.Search
		out.PlanCostSeq = lead.res.PlanCostSeq
		out.PlanCostPar = lead.res.PlanCostPar
		out.Degradations = report.Degradations
	} else {
		// Every set was served from the cache: an empty plan rooted at the
		// base relation, zero cost.
		out.Plan = &plan.Plan{BaseName: req.Table, ColNames: base.ColNames()}
	}
	for s, t := range served {
		report.Results[s] = t
	}
	missedOrigin := OriginComputed
	if counters.FlightShared {
		missedOrigin = OriginFlightShared
	}
	for _, s := range missed {
		origins[s] = missedOrigin
	}
	report.Origins = origins
	snap := e.cache.Snapshot()
	counters.Evictions = snap.Evictions
	counters.Refreshes = snap.Refreshes
	counters.Bytes = snap.Bytes
	counters.Entries = snap.Entries
	report.Cache = counters
	out.Cache = counters
	report.Wall = time.Since(start)
	return out, nil
}

// residualOutcome is what one singleflight residual computation produces: the
// leader's run result (shared read-only with followers) and how many cache
// admissions it made.
type residualOutcome struct {
	res        *RunResult
	admissions int
}

// runResidual plans and executes the not-cache-served grouping sets, then —
// only after the run has fully succeeded — offers its results and its dropped
// temp tables to the cache, each with an admission benefit equal to the cost
// of computing that set from the base relation. Collecting candidates during
// the run but admitting after it is what guarantees a cancelled or
// over-budget run never leaves a partially admitted entry.
func (e *Engine) runResidual(sub Request, ep catalog.Epoch, model cost.Model) (*residualOutcome, error) {
	type promo struct {
		set  colset.Set
		aggs []exec.Agg
		t    *table.Table
	}
	var mu sync.Mutex
	var promos []promo
	res, err := e.runDirect(sub, func(set colset.Set, aggs []exec.Agg, t *table.Table) {
		mu.Lock()
		promos = append(promos, promo{set: set, aggs: aggs, t: t})
		mu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	outcome := &residualOutcome{res: res}
	for _, s := range sub.Sets {
		t := res.Report.Results[s]
		if t == nil {
			continue
		}
		aggs := requestAggs(sub, s)
		if e.offer(sub.Table, ep, s, aggs, t, model) {
			outcome.admissions++
		}
	}
	for _, p := range promos {
		if e.offer(sub.Table, ep, p.set, p.aggs, p.t, model) {
			outcome.admissions++
		}
	}
	return outcome, nil
}

// offer submits one table for admission, with benefit = the cost of computing
// its grouping set from the base relation (what a future exact hit saves). A
// result computed over an epoch the table has since left is not offered — the
// sweep would remove it immediately anyway, and skipping the admission avoids
// checksumming a table nobody can ever hit.
func (e *Engine) offer(tbl string, ep catalog.Epoch, s colset.Set, aggs []exec.Agg, t *table.Table, model cost.Model) bool {
	if e.cat.Epoch(tbl) != ep {
		return false
	}
	benefit := model.EdgeCost(cost.Edge{ParentIsBase: true, V: s, NAggs: len(aggs)})
	return e.cache.Offer(cache.KeyOf(tbl, ep.Version, ep.Delta, s, aggs), aggs, t, benefit)
}

// deriveFromAncestor answers one grouping set from the cheapest cached
// lattice ancestor, when re-aggregating that ancestor is cheaper than
// computing from the base relation under the request's cost model (an index
// fast path on base can beat a cached superset; the comparison decides).
// The derivation runs under singleflight so a stampede on the same missing
// set re-aggregates once, and the derived result is itself offered to the
// cache so the next request is an exact hit. Returns (nil, 0, nil) when no
// profitable ancestor exists.
func (e *Engine) deriveFromAncestor(req Request, base *table.Table, ep catalog.Epoch, s colset.Set, aggs []exec.Agg, model cost.Model) (*table.Table, int, error) {
	cands := e.cache.Ancestors(req.Table, ep.Version, ep.Delta, s, aggs)
	if len(cands) == 0 {
		return nil, 0, nil
	}
	nAggs := len(aggs)
	baseCost := model.EdgeCost(cost.Edge{ParentIsBase: true, V: s, NAggs: nAggs})
	var best *cache.Ancestor
	var bestCost float64
	for i := range cands {
		c := model.EdgeCost(cost.Edge{Parent: cands[i].Set, V: s, NAggs: nAggs})
		if c >= baseCost {
			continue
		}
		if best == nil || c < bestCost ||
			(c == bestCost && cands[i].Set.String() < best.Set.String()) {
			best, bestCost = &cands[i], c
		}
	}
	if best == nil {
		return nil, 0, nil
	}
	key := cache.KeyOf(req.Table, ep.Version, ep.Delta, s, aggs)
	admissions := 0
	val, err, shared := e.cache.Do("derive|"+key.String(), func() (any, error) {
		out, err := e.reaggregate(base, best.Table, s, aggs, req)
		if err != nil {
			return nil, err
		}
		e.cache.TouchAncestor(best.Key)
		if e.cache.Offer(key, aggs, out, baseCost) {
			admissions++
		}
		return out, nil
	})
	if err != nil {
		return nil, 0, err
	}
	if shared {
		admissions = 0
	}
	return val.(*table.Table), admissions, nil
}

// reaggregate computes GROUP BY s over a cached ancestor table, resolving the
// grouping columns by base-column name and rolling the aggregates up through
// the materialized intermediate (§5.2) — the same mapping the engine applies
// when computing a child from a temp table, so the output (schema, values,
// and first-appearance row order) is identical to a cold computation.
func (e *Engine) reaggregate(base *table.Table, anc *table.Table, s colset.Set, aggs []exec.Agg, req Request) (*table.Table, error) {
	baseCols := s.Columns()
	cols := make([]int, len(baseCols))
	for i, bc := range baseCols {
		name := base.Col(bc).Name()
		ord := anc.ColIndex(name)
		if ord < 0 {
			return nil, fmt.Errorf("engine: cached ancestor %s lacks column %q", anc.Name(), name)
		}
		cols[i] = ord
	}
	rolled := make([]exec.Agg, len(aggs))
	for i, a := range aggs {
		src := anc.ColIndex(a.Name)
		if src < 0 {
			return nil, fmt.Errorf("engine: cached ancestor %s lacks aggregate %q", anc.Name(), a.Name)
		}
		rolled[i] = a.Rollup(src)
	}
	gov := exec.NewGov(req.Context, exec.NewMemBudget(0))
	return exec.GroupByHashGov(gov, anc, cols, rolled, plan.TempName(s))
}

// requestAggs returns the aggregates a request computes for one grouping set
// (its per-set override, the shared list, or the COUNT(*) default — mirroring
// the executor's defaulting so cache keys match what execution produces).
func requestAggs(req Request, s colset.Set) []exec.Agg {
	if a, ok := req.PerSetAggs[s]; ok && len(a) > 0 {
		return a
	}
	if len(req.Aggs) == 0 {
		return []exec.Agg{exec.CountStar()}
	}
	return req.Aggs
}

// residualKey canonicalizes everything that determines a residual run's
// output and side effects, so singleflight only collapses requests that are
// truly interchangeable. The caller's context is deliberately excluded — the
// leader's context governs the shared computation.
func residualKey(req Request, ep catalog.Epoch, missed []colset.Set) string {
	var b strings.Builder
	fmt.Fprintf(&b, "run|%s@v%d.%d|%s|%d|ss%t|par%t|dop%d|mb%d|nr%t|core%t,%t,%t,%t,%d,%g",
		req.Table, ep.Version, ep.Delta, req.Strategy, req.Model, req.SharedScan, req.Parallel,
		req.Parallelism, req.MemBudget, req.NoRetain,
		req.Core.BinaryOnly, req.Core.PruneSubsumption, req.Core.PruneMonotonic,
		req.Core.ConsiderCubeRollup, req.Core.MaxCubeCols, req.Core.StorageBudget)
	for _, s := range missed {
		fmt.Fprintf(&b, "|%s:%s", s, cache.AggSignature(requestAggs(req, s)))
	}
	return b.String()
}
