package engine

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/datagen"
	"gbmqo/internal/exec"
	"gbmqo/internal/table"
)

// govSets is a small multi-level workload over low-NDV lineitem columns:
// overlapping sets that give GB-MQO intermediates to materialize and children
// to compute from them (the superset {returnflag, linestatus, shipmode,
// shipdate} is far smaller than the base relation, so materializing it pays).
func govSets() []colset.Set {
	return []colset.Set{
		colset.Of(datagen.LReturnFlag, datagen.LLineStatus, datagen.LShipMode, datagen.LShipDate),
		colset.Of(datagen.LReturnFlag, datagen.LLineStatus),
		colset.Of(datagen.LLineStatus, datagen.LShipMode),
		colset.Of(datagen.LReturnFlag),
		colset.Of(datagen.LLineStatus),
		colset.Of(datagen.LShipMode),
	}
}

func assertSameResults(t *testing.T, a, b map[colset.Set]*table.Table) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("result count %d vs %d", len(a), len(b))
	}
	for set, ta := range a {
		tb, ok := b[set]
		if !ok {
			t.Fatalf("set %s missing from second run", set)
		}
		if ta.NumRows() != tb.NumRows() || ta.NumCols() != tb.NumCols() {
			t.Fatalf("set %s: shape %v vs %v", set, ta, tb)
		}
		for j := 0; j < ta.NumCols(); j++ {
			if ta.Col(j).Name() != tb.Col(j).Name() {
				t.Fatalf("set %s col %d: %q vs %q", set, j, ta.Col(j).Name(), tb.Col(j).Name())
			}
			for i := 0; i < ta.NumRows(); i++ {
				if !ta.Col(j).Value(i).Equal(tb.Col(j).Value(i)) {
					t.Fatalf("set %s row %d col %q: %v vs %v",
						set, i, ta.Col(j).Name(), ta.Col(j).Value(i), tb.Col(j).Value(i))
				}
			}
		}
	}
}

// TestCancelMidPlanDropsTempsAndCatalog verifies the cancellation contract:
// a context cancelled mid-plan (deterministically, at the third schedule
// step via the fault-injection hook) surfaces context.Canceled, marks the
// report Cancelled, returns every temp table's budget charge, and leaves the
// catalog exactly as it was.
func TestCancelMidPlanDropsTempsAndCatalog(t *testing.T) {
	e, _ := newTestEngine(t, 8000)
	before := append([]string(nil), e.Catalog().TableNames()...)
	sort.Strings(before)

	p, _, _, err := e.Plan(Request{Table: "lineitem", Sets: govSets()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var steps atomic.Int64
	exec.Testing.SetFailPoint(func(site string) {
		if site == "engine.step" && steps.Add(1) == 3 {
			cancel()
		}
	})
	defer exec.Testing.ClearFailPoint()

	report, err := e.exec.ExecutePlanWith(p, nil, nil, ExecOptions{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if report == nil || !report.Cancelled {
		t.Fatalf("report = %+v, want Cancelled", report)
	}

	after := append([]string(nil), e.Catalog().TableNames()...)
	sort.Strings(after)
	if strings.Join(before, ",") != strings.Join(after, ",") {
		t.Fatalf("catalog changed by cancelled run: %v -> %v", before, after)
	}
}

// TestCancelBeforeStartViaRun checks the public path: Engine.Run with an
// already-cancelled context fails with context.Canceled before any work.
func TestCancelBeforeStartViaRun(t *testing.T) {
	e, _ := newTestEngine(t, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Run(Request{Table: "lineitem", Sets: govSets(), Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestBudgetDegradedPlanIdenticalOutput is the differential acceptance test:
// a run under a budget too small for any hash table or temp table must still
// complete — via recorded sort fallbacks and re-derivations — with results
// byte-identical to the unbounded run.
func TestBudgetDegradedPlanIdenticalOutput(t *testing.T) {
	e, _ := newTestEngine(t, 8000)
	for _, shared := range []bool{false, true} {
		free, err := e.Run(Request{Table: "lineitem", Sets: govSets(), SharedScan: shared})
		if err != nil {
			t.Fatal(err)
		}
		tight, err := e.Run(Request{Table: "lineitem", Sets: govSets(), SharedScan: shared, MemBudget: 1})
		if err != nil {
			t.Fatalf("budgeted run failed instead of degrading (shared=%v): %v", shared, err)
		}
		if tight.Report.SpillFallbacks == 0 {
			t.Fatalf("shared=%v: no sort fallbacks under a 1-byte budget", shared)
		}
		if len(tight.Degradations) == 0 {
			t.Fatalf("shared=%v: no degradations recorded", shared)
		}
		rederived := false
		for _, d := range tight.Degradations {
			if d.Kind == DegradeRederive {
				rederived = true
			}
		}
		if !rederived {
			t.Fatalf("shared=%v: budget never skipped a temp table: %v", shared, tight.Degradations)
		}
		if tight.Report.TempTables != 0 {
			t.Fatalf("shared=%v: %d temps materialized under a 1-byte budget", shared, tight.Report.TempTables)
		}
		assertSameResults(t, free.Report.Results, tight.Report.Results)
	}
}

// TestBudgetPeakMemMeasuredUnbounded: with no limit, execution still reports
// the high-water mark of governed memory.
func TestBudgetPeakMemMeasured(t *testing.T) {
	e, _ := newTestEngine(t, 4000)
	run, err := e.Run(Request{Table: "lineitem", Sets: govSets()})
	if err != nil {
		t.Fatal(err)
	}
	if run.Report.PeakMem <= 0 {
		t.Fatalf("PeakMem = %d, want > 0", run.Report.PeakMem)
	}
	if len(run.Degradations) != 0 {
		t.Fatalf("unbounded run degraded: %v", run.Degradations)
	}
}

// TestFaultStepPanicIsolated injects a panic at a schedule step and requires
// the ExecutePlan boundary to convert it into a typed *ExecError naming the
// step, with the catalog intact and the process alive.
func TestFaultStepPanicIsolated(t *testing.T) {
	e, _ := newTestEngine(t, 3000)
	before := len(e.Catalog().TableNames())
	p, _, _, err := e.Plan(Request{Table: "lineitem", Sets: govSets()})
	if err != nil {
		t.Fatal(err)
	}
	var steps atomic.Int64
	exec.Testing.SetFailPoint(func(site string) {
		if site == "engine.step" && steps.Add(1) == 2 {
			panic("injected step failure")
		}
	})
	defer exec.Testing.ClearFailPoint()
	_, err = e.exec.ExecutePlanWith(p, nil, nil, ExecOptions{})
	var ee *exec.ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v (%T), want *ExecError", err, err)
	}
	if !strings.Contains(ee.Step, "compute") {
		t.Fatalf("ExecError.Step = %q, want the failing schedule step", ee.Step)
	}
	if got := len(e.Catalog().TableNames()); got != before {
		t.Fatalf("catalog grew from %d to %d tables after panic", before, got)
	}
}

// TestFaultWorkerPanicSurfacesThroughEngine injects a panic into a morsel
// worker during a parallel plan execution and requires it to surface as a
// *ExecError carrying both the worker step and the plan node.
func TestFaultWorkerPanicSurfacesThroughEngine(t *testing.T) {
	e, _ := newTestEngine(t, 40000)
	p, _, _, err := e.Plan(Request{Table: "lineitem", Sets: govSets()})
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	exec.Testing.SetFailPoint(func(site string) {
		if site == "exec.morsel.worker" && fired.Add(1) == 2 {
			panic("injected worker bug")
		}
	})
	defer exec.Testing.ClearFailPoint()
	_, err = e.exec.ExecutePlanWith(p, nil, nil, ExecOptions{Parallelism: 4})
	var ee *exec.ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v (%T), want *ExecError", err, err)
	}
	if !strings.Contains(ee.Step, "morsel worker") {
		t.Fatalf("ExecError.Step = %q, want a morsel worker", ee.Step)
	}
	if ee.Node == "" {
		t.Fatalf("ExecError.Node empty, want the failing plan node: %v", ee)
	}
}

// TestFaultPanicInParallelSubplans checks the Parallel (inter-sub-plan)
// goroutine boundary: a panic inside one concurrently-executing segment is
// recovered there and surfaces as a typed error, not a crash.
func TestFaultPanicInParallelSubplans(t *testing.T) {
	e, _ := newTestEngine(t, 5000)
	p, _, _, err := e.Plan(Request{Table: "lineitem", Sets: govSets(), Strategy: StrategyNaive})
	if err != nil {
		t.Fatal(err)
	}
	var steps atomic.Int64
	exec.Testing.SetFailPoint(func(site string) {
		if site == "engine.step" && steps.Add(1) == 2 {
			panic("injected segment failure")
		}
	})
	defer exec.Testing.ClearFailPoint()
	_, err = e.exec.ExecutePlanWith(p, nil, nil, ExecOptions{Parallel: true})
	var ee *exec.ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v (%T), want *ExecError", err, err)
	}
}

// TestCancelSharedScanMidPlan cancels during a shared-scan execution and
// checks the same contract holds on that path.
func TestCancelSharedScanMidPlan(t *testing.T) {
	e, _ := newTestEngine(t, 8000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var batches atomic.Int64
	exec.Testing.SetFailPoint(func(site string) {
		if site == "exec.hash.batch" && batches.Add(1) == 2 {
			cancel()
		}
	})
	defer exec.Testing.ClearFailPoint()
	_, err := e.Run(Request{Table: "lineitem", Sets: govSets(), SharedScan: true, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
