package engine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"gbmqo/internal/cache"
	"gbmqo/internal/catalog"
	"gbmqo/internal/exec"
	"gbmqo/internal/table"
)

// AppendReport attributes one streaming append: how the table advanced and
// what happened to every cached entry that depended on the previous epoch.
type AppendReport struct {
	// Table is the appended table; Rows the rows appended this call;
	// TotalRows the table's row count after the append.
	Table     string
	Rows      int
	TotalRows int
	// Version and Delta are the table's epoch after the append.
	Version uint64
	Delta   uint64
	// Refreshed counts cached entries rolled forward to the new epoch by
	// delta aggregation + merge.
	Refreshed int
	// Dropped counts cached entries deliberately dropped for lazy
	// re-derivation from a refreshed finer ancestor (the paper's
	// smallest-parent rule applied to maintenance: only the finest cached
	// ancestors are maintained eagerly).
	Dropped int
	// Invalidated counts entries removed outright: non-mergeable aggregate
	// shapes (AVG), refresh failures, and stale-epoch leftovers swept after
	// maintenance.
	Invalidated int
	// RefreshWall is the wall time spent on delta aggregation and merging.
	RefreshWall time.Duration
}

// AppendTableStats is the per-table append/maintenance health surfaced by
// DB.AppendStats and /healthz: the table's current epoch and its refresh lag
// (cached entries dropped at the last appends that are still pending lazy
// re-derivation from a maintained ancestor).
type AppendTableStats struct {
	Version     uint64 `json:"version"`
	Delta       uint64 `json:"delta"`
	Rows        int    `json:"rows"`
	PendingLazy int    `json:"pending_lazy"`
}

// SetAppendObserver installs fn to observe every Append outcome — the hook
// the observability registry uses for append/refresh metrics. fn must be safe
// for concurrent calls; on failure it receives (nil, err). Nil removes it.
func (e *Engine) SetAppendObserver(fn func(*AppendReport, error)) {
	if fn == nil {
		e.appendObs.Store(nil)
		return
	}
	e.appendObs.Store(&fn)
}

// Append appends rows to a registered base table as a streaming delta: the
// table advances one append epoch (Version stays, Delta bumps), dictionaries
// extend in place so existing group-key codes stay stable, and instead of
// orphaning every cached Group By result the engine aggregates only the
// appended segment and merges it into the affected entries (COUNT/SUM/MIN/MAX
// roll forward; AVG falls back to invalidation). Only the finest cached
// ancestors are maintained eagerly — cached descendants subsumed by a
// maintained ancestor are dropped and lazily re-derived by the next query
// through the existing cheapest-cached-ancestor machinery.
//
// Appends are serialized per engine. A failure (validation, injected fault)
// before the catalog swap leaves the table, the cache, and all shared
// dictionary state exactly as they were.
func (e *Engine) Append(name string, rows [][]table.Value) (*AppendReport, error) {
	res, err := e.appendSafe(name, rows)
	if fn := e.appendObs.Load(); fn != nil {
		(*fn)(res, err)
	}
	return res, err
}

// ValidateAppend checks rows against the table's schema without applying
// anything — the durability layer calls it before writing the WAL record so
// an append that could never apply is rejected before it is made durable.
func (e *Engine) ValidateAppend(name string, rows [][]table.Value) error {
	if strings.HasPrefix(name, "__") {
		return fmt.Errorf("engine: cannot append to reserved table %q", name)
	}
	cur, _, ok := e.cat.TableEpoch(name)
	if !ok {
		return fmt.Errorf("engine: unknown table %q", name)
	}
	return validateAppendRows(cur, rows)
}

// appendSafe is the append path behind a panic barrier: a panic anywhere in
// validation or maintenance becomes a typed error. The catalog swap is the
// commit point — panics before it leave no trace; panics after it (cache
// maintenance) are contained per entry and degrade to invalidation.
func (e *Engine) appendSafe(name string, rows [][]table.Value) (res *AppendReport, err error) {
	defer func() {
		if pnc := recover(); pnc != nil {
			res = nil
			err = &exec.ExecError{Step: "engine.append", Err: recoveredPanic(pnc)}
		}
	}()
	return e.append(name, rows)
}

func (e *Engine) append(name string, rows [][]table.Value) (*AppendReport, error) {
	if strings.HasPrefix(name, "__") {
		return nil, fmt.Errorf("engine: cannot append to reserved table %q", name)
	}
	e.appendMu.Lock()
	defer e.appendMu.Unlock()

	cur, oldEp, ok := e.cat.TableEpoch(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	if err := validateAppendRows(cur, rows); err != nil {
		return nil, err
	}
	rep := &AppendReport{Table: name, Rows: len(rows), TotalRows: cur.NumRows(),
		Version: oldEp.Version, Delta: oldEp.Delta}
	if len(rows) == 0 {
		return rep, nil
	}

	// The failpoint fires before any shared state is touched: an injected
	// fault here aborts the append with dictionaries, code backing and the
	// catalog untouched (the abort-safety the chaos suite asserts). Only
	// after this line does Table.Append extend shared dictionary state.
	exec.Testing.Fire("table.append")

	next := cur.Append(rows)
	newEp, err := e.cat.RegisterDelta(next)
	if err != nil {
		return nil, err
	}
	rep.TotalRows = next.NumRows()
	rep.Version, rep.Delta = newEp.Version, newEp.Delta

	start := time.Now()
	e.maintainCache(name, next, oldEp, newEp, rep)
	rep.RefreshWall = time.Since(start)

	// Sweep whatever is still keyed to a dead epoch — entries maintenance
	// chose to drop, entries whose refresh failed, stragglers admitted by
	// concurrent queries that raced the epoch bump — and reclaim statistics
	// built over the dead snapshot.
	rep.Invalidated += e.cache.InvalidateBelow(name, newEp.Version, newEp.Delta)
	e.cat.Stats().DropStale(name, next)
	return rep, nil
}

// validateAppendRows rejects malformed rows with an error before any shared
// state is touched (Table.Append would panic, but by then validation must
// already have passed — an abort mid-extension would corrupt shared lookup
// maps).
func validateAppendRows(t *table.Table, rows [][]table.Value) error {
	for ri, row := range rows {
		if len(row) != t.NumCols() {
			return fmt.Errorf("engine: append row %d has %d values, want %d", ri, len(row), t.NumCols())
		}
		for ci, v := range row {
			if !v.Null && v.Typ != t.Col(ci).Type() {
				return fmt.Errorf("engine: append row %d column %q: %s value in %s column",
					ri, t.Col(ci).Name(), v.Typ, t.Col(ci).Type())
			}
		}
	}
	return nil
}

// maintainCache rolls the table's cached entries forward across one append.
// Entries with mergeable aggregates whose grouping set is not strictly
// subsumed by another maintained resident are refreshed eagerly (delta
// aggregation + group-wise merge); subsumed entries are dropped and counted
// as pending lazy re-derivation; non-mergeable entries are invalidated. Each
// entry is maintained under its own panic barrier — a fault refreshing one
// entry degrades that entry to invalidation (via the caller's sweep) without
// affecting the others or the append itself.
func (e *Engine) maintainCache(name string, next *table.Table, oldEp, newEp catalog.Epoch, rep *AppendReport) {
	if e.cache == nil {
		return
	}
	residents := e.cache.ResidentsAt(name, oldEp.Version, oldEp.Delta)
	if len(residents) == 0 {
		return
	}

	// Partition residents: mergeable shapes are roll-forward candidates,
	// the rest are invalidated outright.
	var cands []cache.Resident
	for _, r := range residents {
		if exec.Mergeable(r.Aggs) {
			cands = append(cands, r)
			continue
		}
		if e.cache.Invalidate(r.Key) {
			rep.Invalidated++
		}
	}

	// Finest-ancestor rule: refresh r eagerly unless some other candidate
	// strictly subsumes it (superset grouping + aggregate coverage) — then r
	// is rebuilt more cheaply on demand from the refreshed ancestor, so
	// maintaining it now would duplicate work the lattice already prices.
	// Lazy-dropping requires r's aggregates to survive the re-aggregation
	// path (Rollupable), which every mergeable list does.
	subsumed := func(r cache.Resident) bool {
		for _, s := range cands {
			if s.Key == r.Key || s.Set == r.Set {
				continue
			}
			if r.Set.SubsetOf(s.Set) && cache.CoversAggs(s.Aggs, r.Aggs) {
				return true
			}
		}
		return false
	}

	var delta *table.Table
	lazyDropped := 0
	for _, r := range cands {
		if subsumed(r) {
			if e.cache.Invalidate(r.Key) {
				rep.Dropped++
				lazyDropped++
			}
			continue
		}
		if delta == nil {
			delta = next.DeltaView()
		}
		if e.refreshEntry(r, delta, newEp) {
			rep.Refreshed++
		}
		// A failed refresh leaves the old-epoch entry for the sweep to count.
	}
	if lazyDropped > 0 {
		e.lazyMu.Lock()
		if e.pendingLazy == nil {
			e.pendingLazy = make(map[string]int)
		}
		e.pendingLazy[name] += lazyDropped
		e.lazyMu.Unlock()
	}
}

// refreshEntry rolls one cached entry forward: aggregate the delta segment
// with the adaptive kernel chooser, merge group-wise into the cached result,
// and swap the entry to the new epoch's key. Runs under its own panic
// barrier; any failure reports false and leaves the entry to the sweep.
func (e *Engine) refreshEntry(r cache.Resident, delta *table.Table, newEp catalog.Epoch) (refreshed bool) {
	defer func() {
		if recover() != nil {
			refreshed = false
		}
	}()
	nKeys := r.Set.Len()
	if r.Table.NumCols() != nKeys+len(r.Aggs) {
		return false
	}
	// Resolve the cached table's key columns back to base ordinals by name,
	// so the delta aggregation emits keys in exactly the cached layout.
	groupCols := make([]int, nKeys)
	for i := 0; i < nKeys; i++ {
		ord := delta.ColIndex(r.Table.Col(i).Name())
		if ord < 0 || !r.Set.Has(ord) {
			return false
		}
		groupCols[i] = ord
	}
	// Align the aggregate list to the cached table's aggregate column order.
	aggs := make([]exec.Agg, len(r.Aggs))
	for i := range aggs {
		colName := r.Table.Col(nKeys + i).Name()
		found := false
		for _, a := range r.Aggs {
			if a.Name == colName {
				aggs[i], found = a, true
				break
			}
		}
		if !found {
			return false
		}
	}
	gov := exec.NewGov(context.Background(), exec.NewMemBudget(0))
	deltaAgg, _, err := exec.GroupByAdaptiveGov(gov, delta, groupCols, aggs, r.Table.Name()+"__dagg", exec.AdaptiveHints{})
	if err != nil {
		return false
	}
	merged, err := exec.MergeAppendedGroups(r.Table, deltaAgg, nKeys, aggs, r.Table.Name())
	if err != nil {
		return false
	}
	newKey := cache.Key{Table: r.Key.Table, Version: newEp.Version, Delta: newEp.Delta,
		Set: r.Key.Set, AggSig: r.Key.AggSig}
	return e.cache.Refresh(r.Key, newKey, merged)
}

// noteLazyServed decrements a table's pending-lazy-re-derivation count when a
// query answers from a cached ancestor — the event that actually repopulates
// a dropped descendant.
func (e *Engine) noteLazyServed(name string) {
	e.lazyMu.Lock()
	if n, ok := e.pendingLazy[name]; ok {
		if n <= 1 {
			delete(e.pendingLazy, name)
		} else {
			e.pendingLazy[name] = n - 1
		}
	}
	e.lazyMu.Unlock()
}

// AppendStats reports per-table append epochs and refresh lag for every
// registered base table that has seen an append or has pending lazy work.
func (e *Engine) AppendStats() map[string]AppendTableStats {
	out := make(map[string]AppendTableStats)
	for _, name := range e.cat.TableNames() {
		if strings.HasPrefix(name, "__") {
			continue
		}
		t, ep, ok := e.cat.TableEpoch(name)
		if !ok {
			continue
		}
		e.lazyMu.Lock()
		pending := e.pendingLazy[name]
		e.lazyMu.Unlock()
		if ep.Delta == 0 && pending == 0 {
			continue
		}
		out[name] = AppendTableStats{Version: ep.Version, Delta: ep.Delta,
			Rows: t.NumRows(), PendingLazy: pending}
	}
	return out
}
