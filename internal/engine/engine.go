// Package engine executes logical plans: it walks the §4.4 storage-minimizing
// schedule, materializes intermediate Group By results as temp tables in the
// catalog, rolls aggregates up when computing from intermediates (§5.2),
// exploits indexes on base-table scans (§6.9), drops temp tables as soon as
// their children are computed, and accounts wall time, rows scanned and peak
// intermediate storage. It also packages the end-to-end strategies the
// experiments compare: naive, commercial GROUPING SETS emulation, GB-MQO and
// exhaustive.
//
// Execution is resource-governed: a context.Context threaded through
// ExecOptions cancels running plans at morsel/row-batch boundaries, a
// MemBudget bounds the bytes held by hash tables and materialized temps with
// graceful degradation (hash → sort aggregation; temp retention → re-derive
// from base) instead of failure, and operator panics are isolated into typed
// *exec.ExecError values at the ExecutePlan boundary so a bad plan never
// crashes the process.
package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gbmqo/internal/cache"
	"gbmqo/internal/catalog"
	"gbmqo/internal/colset"
	"gbmqo/internal/exec"
	"gbmqo/internal/index"
	"gbmqo/internal/plan"
	"gbmqo/internal/table"
)

// DegradeKind classifies a graceful-degradation decision taken under a
// memory budget.
type DegradeKind int

// Degradation kinds, in ladder order.
const (
	// DegradeSortAgg replaced a hash aggregation whose estimated state would
	// exceed the budget with sort-based aggregation (O(rows) working state
	// instead of O(NDV) hash state).
	DegradeSortAgg DegradeKind = iota
	// DegradeUnshare split a shared scan into individual per-query passes
	// because holding every sibling's hash table at once would exceed the
	// budget.
	DegradeUnshare
	// DegradeRederive skipped materializing an intermediate temp table; its
	// children are computed from the base relation instead.
	DegradeRederive
	// DegradeKernelFallback recorded the kernel chooser preferring the dense
	// or radix aggregation kernel but falling down the ladder because the
	// budget would not admit the kernel's working state.
	DegradeKernelFallback
)

// String names the degradation kind.
func (k DegradeKind) String() string {
	switch k {
	case DegradeSortAgg:
		return "sort-fallback"
	case DegradeUnshare:
		return "unshared-scan"
	case DegradeRederive:
		return "rederive-from-base"
	case DegradeKernelFallback:
		return "kernel-fallback"
	default:
		return fmt.Sprintf("DegradeKind(%d)", int(k))
	}
}

// Degradation records one graceful-degradation decision taken during plan
// execution under a constrained MemBudget.
type Degradation struct {
	// Kind is the ladder rung applied.
	Kind DegradeKind
	// Node is the grouping set affected.
	Node string
	// Detail explains the decision (estimated bytes vs budget headroom).
	Detail string
}

// String renders the decision.
func (d Degradation) String() string {
	return fmt.Sprintf("%s at %s: %s", d.Kind, d.Node, d.Detail)
}

// KernelUse attributes one executed Group By operator to the physical
// aggregation kernel that ran it.
type KernelUse struct {
	// Node is the grouping set computed (set notation, matching plan output).
	Node string
	// Kernel names the kernel: "hash", "sort", "dense", "radix", or the index
	// fast-path pseudo-kernels "index-stream" / "index-counts".
	Kernel string
	// Reason is the chooser's explanation for the pick.
	Reason string
	// Rows is the operator's input row count; Groups its output group count.
	Rows   int
	Groups int
	// Workers is the parallel worker count the kernel used (1 = sequential).
	Workers int
	// RehashesAvoided counts grow() doublings the NDV presize skipped.
	RehashesAvoided int
}

// String renders one attribution row.
func (k KernelUse) String() string {
	return fmt.Sprintf("%s: %s (%d rows → %d groups, %d workers): %s",
		k.Node, k.Kernel, k.Rows, k.Groups, k.Workers, k.Reason)
}

// SetOrigin attributes one requested grouping set's result to how it was
// produced — the per-query attribution a batching front-end needs when many
// independently submitted queries ride one plan.
type SetOrigin int

// Result origins.
const (
	// OriginComputed: the set was planned and executed by this run.
	OriginComputed SetOrigin = iota
	// OriginCacheHit: served from an exact cross-query cache entry.
	OriginCacheHit
	// OriginCacheAncestor: re-aggregated from a cached lattice ancestor.
	OriginCacheAncestor
	// OriginFlightShared: computed by a concurrent identical request this run
	// piggybacked on (singleflight follower).
	OriginFlightShared
)

// String names the origin.
func (o SetOrigin) String() string {
	switch o {
	case OriginComputed:
		return "computed"
	case OriginCacheHit:
		return "cache-hit"
	case OriginCacheAncestor:
		return "cache-ancestor"
	case OriginFlightShared:
		return "flight-shared"
	default:
		return fmt.Sprintf("SetOrigin(%d)", int(o))
	}
}

// ExecReport describes one plan execution.
//
// Concurrency: a report belongs to the Run/ExecutePlan call that produced it
// and is written only until that call returns; afterwards every field is safe
// to read from any goroutine without synchronization. Concurrent submitters
// each receive their own report — the only sharing is the result *tables*
// reachable from Results on the cached path (singleflight followers see the
// leader's tables), and tables are immutable once built. Cross-request
// cumulative counters live in cache.Stats (atomics, see DB.CacheStats) and
// the obs registry, never in an ExecReport.
type ExecReport struct {
	// Wall is the end-to-end execution time.
	Wall time.Duration
	// RowsScanned totals the input rows consumed by all Group By operators.
	RowsScanned int64
	// QueriesRun counts executed Group By statements (covered cube/rollup
	// levels included).
	QueriesRun int
	// TempTables counts materialized intermediates.
	TempTables int
	// PeakTempBytes is the maximum bytes held by live temp tables.
	PeakTempBytes float64
	// ParallelOps counts Group By operators that ran on the morsel-parallel
	// path (operators under the size cutoff fall back to sequential and are
	// not counted).
	ParallelOps int
	// MaxWorkers is the largest morsel-worker count any operator used.
	MaxWorkers int
	// MergeTime totals the wall time parallel operators spent merging
	// worker-local hash tables into final results.
	MergeTime time.Duration
	// PeakMem is the high-water mark, in bytes, of governed execution memory:
	// hash-table slots, accumulator state, sort permutations, and materialized
	// temp tables, as charged against the run's MemBudget.
	PeakMem int64
	// SpillFallbacks counts hash aggregations degraded to the sort-based
	// operator because their estimated state would have exceeded the budget.
	SpillFallbacks int
	// Cancelled reports that execution stopped on context cancellation or
	// deadline; the report then accompanies a context error and all temp
	// tables have been dropped.
	Cancelled bool
	// Degradations lists the graceful-degradation decisions taken, in order.
	Degradations []Degradation
	// Kernels attributes, per executed Group By operator, which physical
	// aggregation kernel the adaptive chooser ran and why, in execution order.
	// Index fast paths appear with the pseudo-kernels "index-stream" /
	// "index-counts".
	Kernels []KernelUse
	// RehashesAvoided totals the hash-table grow() doublings skipped because
	// group tables were presized from NDV estimates.
	RehashesAvoided int
	// Cache describes how the cross-query result cache served this run (all
	// zero when no cache is configured or the request bypassed it).
	Cache CacheCounters
	// Attempts counts the engine-boundary attempts this result took: 1 for a
	// first-try success, more when the retry loop re-ran the request.
	// Populated by Engine.Run; direct Executor calls leave it 0.
	Attempts int
	// Retries attributes each failed-and-retried attempt: the error, its
	// classification, the backoff taken, and the degraded modes the following
	// attempt ran under. Nil on a first-try success.
	Retries []RetryAttempt
	// Origins attributes each requested grouping set's result to how it was
	// produced (computed, cache hit, ancestor re-aggregation, shared flight).
	// Populated by Engine.Run; direct Executor calls leave it nil (everything
	// an executor produces is OriginComputed by construction).
	Origins map[colset.Set]SetOrigin
	// ShardsTotal is the number of shards the request was scattered over.
	// 0 means the request was not sharded (single-engine execution).
	ShardsTotal int
	// Partial reports that the result was merged from surviving shards only
	// (Request.AllowPartial). ShardsFailed attributes the gap.
	Partial bool
	// ShardsFailed names each shard that contributed nothing to a partial
	// result and why. Nil on full (or unsharded) results.
	ShardsFailed []ShardFailure
	// ShardCoverage is the fraction of base-table rows held by the shards
	// that contributed to the result (1 on a full sharded result, 0 when not
	// sharded).
	ShardCoverage float64
	// ShardRetries counts shard-scope retry attempts taken across all shards
	// during the gather (distinct from Retries, the engine-boundary loop).
	ShardRetries int
	// HedgesFired and HedgesWon count hedged duplicate shard requests
	// launched against stragglers, and how many of them beat the primary.
	HedgesFired int
	HedgesWon   int
	// Results holds the output table per required grouping set.
	Results map[colset.Set]*table.Table
}

// ShardFailure attributes one shard's absence from a partial result.
type ShardFailure struct {
	// Shard is the failed shard's index.
	Shard int
	// Err is the final error that exhausted the shard (open breaker, retries
	// spent, deadline).
	Err error
}

// String renders the attribution compactly.
func (f ShardFailure) String() string {
	return fmt.Sprintf("shard %d: %v", f.Shard, f.Err)
}

// Executor runs plans over a base table resolved through a catalog.
type Executor struct {
	cat *catalog.Catalog
}

// NewExecutor builds an executor over the catalog.
func NewExecutor(cat *catalog.Catalog) *Executor { return &Executor{cat: cat} }

// ExecOptions tunes plan execution.
type ExecOptions struct {
	// SharedScan computes sibling Group Bys (consecutive schedule steps with
	// the same parent) in one pass over the parent — the §5.1 shared-scan
	// technique. Index fast paths and CUBE/ROLLUP nodes are executed
	// individually regardless.
	SharedScan bool
	// PerSetAggs assigns different aggregates per required grouping set
	// (§7.2). Intermediate nodes carry the union of their required
	// descendants' aggregates; each required set's result is projected back
	// to its own.
	PerSetAggs map[colset.Set][]exec.Agg
	// Parallel executes independent sub-plans (trees hanging directly off the
	// base relation) concurrently, one goroutine per sub-plan bounded by
	// GOMAXPROCS. Temp tables are private to their sub-plan, so no
	// synchronization is needed beyond merging the reports; PeakTempBytes
	// becomes the (pessimistic) sum of concurrent per-sub-plan peaks.
	Parallel bool
	// Parallelism caps the morsel workers *inside* one Group By operator
	// (intra-operator parallelism, orthogonal to Parallel's inter-sub-plan
	// concurrency): 0 disables it, negative selects GOMAXPROCS, positive
	// values are used as-is. Operators whose input is below the exec size
	// cutoff stay sequential regardless, so tiny temp-table re-aggregations
	// never pay morsel overhead. Index fast paths are always sequential.
	Parallelism int
	// Context cancels or deadlines the execution. Operator loops poll it at
	// every morsel and row-batch boundary, so cancellation takes effect
	// within one morsel's worth of work, drops every temp table, and leaves
	// the catalog unchanged. Nil means context.Background().
	Context context.Context
	// MemBudget bounds, in bytes, the execution working state held at once:
	// hash-table slots, accumulator arrays, sort permutations, and
	// materialized temp tables. Exceeding the budget triggers graceful
	// degradation (sort-based aggregation, un-shared scans, re-deriving
	// subtrees from the base relation) rather than failure; the decisions
	// taken are recorded in ExecReport.Degradations. 0 means unlimited —
	// PeakMem is still measured.
	MemBudget int64
	// NDVFn, when non-nil, answers NDV estimates for grouping sets from
	// *already-built* statistics (0 = unknown) — the stats feed of the
	// adaptive kernel chooser. It must never build a statistic: kernel choice
	// happens mid-execution, where profiling would cost more than it saves.
	NDVFn func(colset.Set) float64
	// NoRetain skips materializing intermediate temp tables regardless of
	// budget headroom; children re-derive from the base relation through the
	// same skipped-intermediate machinery the memory budget uses. Results are
	// byte-identical; the run trades extra scans for holding no shared state.
	NoRetain bool
	// PromoteTemp, when non-nil, observes every materialized intermediate at
	// the moment it would be dropped, along with the aggregates it carries —
	// the hook the result cache uses to collect promotion candidates instead
	// of letting temps die with the run. The hook only records candidates; it
	// must not admit anything until the run has succeeded, so a cancelled or
	// failed execution can never leave a partially admitted entry. It may be
	// called from concurrent sub-plan goroutines under ExecOptions.Parallel.
	PromoteTemp func(set colset.Set, aggs []exec.Agg, t *table.Table)
}

// ExecutePlan runs the plan against its base table. aggs are the aggregate
// specifications with source ordinals on the base table; nil selects
// COUNT(*). size estimates node result sizes for the §4.4 scheduler (nil
// falls back to a flat estimate, preserving plan order but not storage
// optimality).
func (ex *Executor) ExecutePlan(p *plan.Plan, aggs []exec.Agg, size plan.SizeFn) (*ExecReport, error) {
	return ex.ExecutePlanWith(p, aggs, size, ExecOptions{})
}

// ExecutePlanWith is ExecutePlan with execution options.
//
// On failure the partial report is returned alongside the error so callers
// can observe Cancelled, PeakMem and the degradations taken before the
// failure. An operator panic — including one inside a morsel worker — is
// recovered and returned as a typed *exec.ExecError naming the failing step;
// the process survives and every temp table is released.
func (ex *Executor) ExecutePlanWith(p *plan.Plan, aggs []exec.Agg, size plan.SizeFn, opts ExecOptions) (report *ExecReport, err error) {
	base, ok := ex.cat.Table(p.BaseName)
	if !ok {
		return nil, fmt.Errorf("engine: unknown base table %q", p.BaseName)
	}
	if len(aggs) == 0 {
		aggs = []exec.Agg{exec.CountStar()}
	}
	if size == nil {
		size = func(colset.Set) float64 { return 1 }
	}
	budget := exec.NewMemBudget(opts.MemBudget)
	run := &planRun{
		ex:        ex,
		base:      base,
		aggs:      aggs,
		par:       exec.ResolveWorkers(opts.Parallelism),
		gov:       exec.NewGov(opts.Context, budget),
		budget:    budget,
		size:      size,
		ndv:       opts.NDVFn,
		noRetain:  opts.NoRetain,
		promote:   opts.PromoteTemp,
		temps:     map[colset.Set]*table.Table{},
		tempBytes: map[colset.Set]int64{},
		tempAggs:  map[colset.Set][]exec.Agg{},
		skipped:   map[colset.Set]bool{},
		report:    &ExecReport{Results: map[colset.Set]*table.Table{}},
	}
	defer func() {
		if pnc := recover(); pnc != nil {
			run.releaseAll()
			run.finish()
			report = run.report
			err = &exec.ExecError{Step: run.curStep, Err: recoveredPanic(pnc)}
		}
	}()
	if run.par > 1 {
		// The scan image is built lazily and shared by all operators over the
		// base table; force it before any morsel worker can race on it.
		base.RowImage()
	}
	if len(opts.PerSetAggs) > 0 {
		run.perSet = opts.PerSetAggs
		run.nodeAggs = map[*plan.Node][]exec.Agg{}
		for _, r := range p.Roots {
			run.buildAggUnion(r)
		}
	}
	steps := plan.Schedule(p, size)
	if opts.Parallel {
		return ex.executeParallel(run, p, steps, opts)
	}
	start := time.Now()
	if err := runSteps(run, steps, opts); err != nil {
		return run.fail(err)
	}
	run.report.Wall = time.Since(start)
	run.finish()
	annotateKernels(p, run.report)
	return run.report, nil
}

// annotateKernels attaches the report's per-node kernel attribution to the
// plan for display: p.String() then renders each node with the kernel that
// executed it. The first attribution per node wins (CUBE/ROLLUP covered
// levels re-aggregate under the same set; the node's own computation comes
// first).
func annotateKernels(p *plan.Plan, rep *ExecReport) {
	if len(rep.Kernels) == 0 {
		return
	}
	notes := make(map[string]string, len(rep.Kernels))
	for _, k := range rep.Kernels {
		if _, ok := notes[k.Node]; !ok {
			notes[k.Node] = k.Kernel
		}
	}
	p.Annotate(notes)
}

// runSteps walks one contiguous schedule (the whole plan sequentially, or
// one sub-plan segment under Parallel), polling the governing context and
// firing the engine.step fault-injection site before every step.
func runSteps(run *planRun, steps []plan.Step, opts ExecOptions) error {
	for i := 0; i < len(steps); {
		step := steps[i]
		if err := run.checkStep(step); err != nil {
			return err
		}
		if step.Kind == plan.StepDrop {
			run.drop(step.Node.Set)
			i++
			continue
		}
		if opts.SharedScan {
			if batch := shareableRun(steps[i:], run); len(batch) > 1 {
				if err := run.computeShared(batch, step.Parent); err != nil {
					return err
				}
				i += len(batch)
				continue
			}
		}
		if err := run.compute(step.Node, step.Parent); err != nil {
			return err
		}
		i++
	}
	return nil
}

// recoveredPanic converts a recovered panic value into an error, preserving
// error panics for errors.Is/As chains.
func recoveredPanic(p any) error {
	if e, ok := p.(error); ok {
		return fmt.Errorf("panic: %w", e)
	}
	return fmt.Errorf("panic: %v", p)
}

// shareableRun returns the maximal prefix of steps that can execute as one
// shared scan: consecutive plain Group By computations from the same parent,
// none of which has an index fast path.
func shareableRun(steps []plan.Step, run *planRun) []*plan.Node {
	var batch []*plan.Node
	parent := steps[0].Parent
	for _, s := range steps {
		if s.Kind != plan.StepCompute || !sameParent(s.Parent, parent) || s.Node.Op != plan.OpGroupBy {
			break
		}
		if parent == nil && index.BestFor(run.ex.cat.Indexes(run.base.Name()), s.Node.Set) != nil {
			break // let the index path handle it individually
		}
		if parent != nil && !cache.Rollupable(run.aggsFor(s.Node)) {
			break // AVG node: must re-derive from base, not the shared temp
		}
		batch = append(batch, s.Node)
	}
	return batch
}

func sameParent(a, b *plan.Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Set == b.Set
}

// planRun is the state of one plan execution.
type planRun struct {
	ex     *Executor
	base   *table.Table
	aggs   []exec.Agg
	par    int // intra-operator morsel worker budget (≤1 = sequential)
	gov    *exec.Gov
	budget *exec.MemBudget
	size   plan.SizeFn
	// ndv answers NDV estimates from already-built statistics for the kernel
	// chooser (nil or a 0 answer = unknown; see ExecOptions.NDVFn).
	ndv func(colset.Set) float64
	// noRetain skips every temp-table materialization (ExecOptions.NoRetain);
	// children re-derive from base via the skipped map.
	noRetain bool
	// promote, when non-nil, observes each temp as it is dropped (see
	// ExecOptions.PromoteTemp); tempAggs remembers the aggregates each live
	// temp carries so the observation is self-describing.
	promote   func(colset.Set, []exec.Agg, *table.Table)
	temps     map[colset.Set]*table.Table
	tempBytes map[colset.Set]int64
	tempAggs  map[colset.Set][]exec.Agg
	// skipped marks intermediates whose materialization was skipped under the
	// memory budget; children re-derive from the base relation instead.
	skipped   map[colset.Set]bool
	liveBytes float64
	curStep   string // description of the step in flight, for panic context
	report    *ExecReport

	// §7.2 state: per-required-set aggregates and the per-node unions.
	perSet   map[colset.Set][]exec.Agg
	nodeAggs map[*plan.Node][]exec.Agg
}

// checkStep records the step about to run (panic context), fires the
// engine.step fault-injection site, and polls the governing context.
func (r *planRun) checkStep(step plan.Step) error {
	r.curStep = stepDesc(step)
	exec.Testing.Fire("engine.step")
	return r.gov.Err()
}

// stepDesc renders a schedule step for error context.
func stepDesc(step plan.Step) string {
	if step.Kind == plan.StepDrop {
		return fmt.Sprintf("drop %s", step.Node.Set)
	}
	if step.Parent == nil {
		return fmt.Sprintf("compute %s from base", step.Node.Set)
	}
	return fmt.Sprintf("compute %s from %s", step.Node.Set, step.Parent.Set)
}

// fail releases every live temp table, marks cancellation when the error is
// context-derived, and returns the partial report with the error.
func (r *planRun) fail(err error) (*ExecReport, error) {
	r.releaseAll()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		r.report.Cancelled = true
	}
	r.finish()
	return r.report, err
}

// finish folds the budget's high-water mark into the report.
func (r *planRun) finish() {
	if pk := r.budget.Peak(); pk > r.report.PeakMem {
		r.report.PeakMem = pk
	}
}

// releaseAll drops every live temp table and returns its budget charge.
func (r *planRun) releaseAll() {
	for set := range r.temps {
		r.drop(set)
	}
}

// degrade records one graceful-degradation decision.
func (r *planRun) degrade(kind DegradeKind, set colset.Set, detail string) {
	r.report.Degradations = append(r.report.Degradations, Degradation{
		Kind:   kind,
		Node:   set.String(),
		Detail: detail,
	})
}

// hashEstimate approximates the working state of a hash aggregation
// producing set: the materialized result (the SizeFn estimate) plus
// comparable hash-table and accumulator state — about twice the result
// bytes. It is the admission gate for the hash → sort degradation.
func (r *planRun) hashEstimate(set colset.Set) int64 {
	return 2 * int64(r.size(set))
}

// hashGroupBy dispatches one Group By aggregation through the adaptive
// kernel chooser: per-node statistics (NDV estimate, dictionary-derived dense
// domain, row count) and the memory budget pick among the dense
// accumulator-array kernel, the radix-partitioned parallel kernel, sort-based
// aggregation (the budget rung: O(rows) working state), and the presized
// hash kernel (morsel-parallel when the worker budget and input size allow).
// The pick, its reason, and any budget-rejected preferences are recorded in
// the report's kernel attribution and degradation list.
func (r *planRun) hashGroupBy(src *table.Table, cols []int, aggs []exec.Agg, set colset.Set, name string) (*table.Table, error) {
	hints := exec.AdaptiveHints{Workers: r.par}
	if len(cols) > 0 {
		hints.NDV = r.ndvEstimate(set)
		if r.budget.Limit() > 0 {
			hints.HashStateBytes = r.hashEstimate(set)
		}
	}
	out, ks, err := exec.GroupByAdaptiveGov(r.gov, src, cols, aggs, name, hints)
	if err != nil {
		return nil, err
	}
	if ks.Kind == exec.KernelSort && hints.HashStateBytes > 0 {
		r.degrade(DegradeSortAgg, set, fmt.Sprintf(
			"estimated hash state %dB over budget (used %d of %dB); sort-based aggregation",
			hints.HashStateBytes, r.budget.Used(), r.budget.Limit()))
		r.report.SpillFallbacks++
	}
	r.noteKernel(set, src.NumRows(), ks)
	return out, nil
}

// ndvEstimate answers the chooser's NDV question from already-built
// statistics (0 = unknown).
func (r *planRun) ndvEstimate(set colset.Set) float64 {
	if r.ndv == nil {
		return 0
	}
	return r.ndv(set)
}

// noteKernel folds one operator's kernel stats into the report: the per-node
// attribution row, budget-rejected preferences as kernel-fallback
// degradations, presize savings, and the parallelism counters.
func (r *planRun) noteKernel(set colset.Set, rows int, ks exec.KernelStats) {
	for _, fb := range ks.Fallbacks {
		r.degrade(DegradeKernelFallback, set, fmt.Sprintf(
			"%s kernel preferred but %s; fell back to %s", fb.Kind, fb.Detail, ks.Kind))
	}
	r.report.Kernels = append(r.report.Kernels, KernelUse{
		Node:            set.String(),
		Kernel:          ks.Kind.String(),
		Reason:          ks.Reason,
		Rows:            rows,
		Groups:          ks.Groups,
		Workers:         ks.Workers,
		RehashesAvoided: ks.RehashesAvoided,
	})
	r.report.RehashesAvoided += ks.RehashesAvoided
	r.notePar(exec.ParStats{Workers: ks.Workers, Merge: ks.Merge})
}

// noteKernelNamed records an attribution row for a path outside the adaptive
// chooser (index fast paths, shared scans).
func (r *planRun) noteKernelNamed(set colset.Set, kernel, reason string, rows, groups, rehashes int) {
	r.report.Kernels = append(r.report.Kernels, KernelUse{
		Node:            set.String(),
		Kernel:          kernel,
		Reason:          reason,
		Rows:            rows,
		Groups:          groups,
		Workers:         1,
		RehashesAvoided: rehashes,
	})
	r.report.RehashesAvoided += rehashes
}

// notePar folds one operator's parallel-execution stats into the report.
func (r *planRun) notePar(st exec.ParStats) {
	if st.Workers <= 1 {
		return
	}
	r.report.ParallelOps++
	if st.Workers > r.report.MaxWorkers {
		r.report.MaxWorkers = st.Workers
	}
	r.report.MergeTime += st.Merge
}

// buildAggUnion computes, bottom-up, the union of aggregates each node must
// carry: its own (when required) plus everything its descendants need —
// the §7.2 union method. Aggregates are deduplicated by output name.
func (r *planRun) buildAggUnion(n *plan.Node) []exec.Agg {
	var union []exec.Agg
	seen := map[string]bool{}
	add := func(aggs []exec.Agg) {
		for _, a := range aggs {
			if !seen[a.Name] {
				seen[a.Name] = true
				union = append(union, a)
			}
		}
	}
	if n.Required {
		add(r.setAggs(n.Set))
	}
	for _, c := range n.Children {
		add(r.buildAggUnion(c))
	}
	if len(union) == 0 {
		add(r.aggs)
	}
	r.nodeAggs[n] = union
	return union
}

// setAggs returns a required set's own aggregates.
func (r *planRun) setAggs(set colset.Set) []exec.Agg {
	if a, ok := r.perSet[set]; ok && len(a) > 0 {
		return a
	}
	return r.aggs
}

// aggsFor returns the aggregates node n's computation must produce.
func (r *planRun) aggsFor(n *plan.Node) []exec.Agg {
	if r.nodeAggs == nil {
		return r.aggs
	}
	return r.nodeAggs[n]
}

// projectResult narrows a required node's result to its own grouping columns
// and aggregates (intermediates keep the union for their children).
func (r *planRun) projectResult(n *plan.Node, t *table.Table) *table.Table {
	if r.perSet == nil {
		return t
	}
	own := r.setAggs(n.Set)
	var ords []int
	n.Set.ForEach(func(c int) {
		ords = append(ords, t.ColIndex(r.base.Col(c).Name()))
	})
	for _, a := range own {
		ords = append(ords, t.ColIndex(a.Name))
	}
	for _, o := range ords {
		if o < 0 {
			return t // defensive: never drop data over a naming mismatch
		}
	}
	if len(ords) == t.NumCols() {
		return t
	}
	return t.Project(t.Name(), ords)
}

// nodeErr attaches the plan-node context to a typed execution error bubbling
// out of an operator (e.g. a recovered morsel-worker panic); other errors —
// including context cancellation — pass through unchanged.
func nodeErr(n *plan.Node, err error) error {
	var ee *exec.ExecError
	if errors.As(err, &ee) && ee.Node == "" {
		ee.Node = n.Set.String()
	}
	return err
}

// compute evaluates one node from its parent (nil parent = base relation).
func (r *planRun) compute(n *plan.Node, parent *plan.Node) error {
	var out *table.Table
	var err error
	if parent == nil {
		out, err = r.fromBase(n)
	} else {
		out, err = r.fromTemp(n, parent.Set)
	}
	if err != nil {
		return nodeErr(n, err)
	}
	switch n.Op {
	case plan.OpCube, plan.OpRollup:
		if err := r.expandCovered(n, out); err != nil {
			return nodeErr(n, err)
		}
	}
	if n.IsIntermediate() {
		r.retain(n.Set, r.aggsFor(n), out)
	}
	if n.Required {
		r.report.Results[n.Set] = r.projectResult(n, out)
	}
	return nil
}

// computeShared evaluates several sibling nodes in one pass over their
// common parent (nil = base relation). Under a constrained budget, a batch
// whose combined hash state would not fit — or whose parent was never
// materialized — falls back to individual computation, where each query gets
// its own admission decision (hash, sort, or re-derive from base).
func (r *planRun) computeShared(nodes []*plan.Node, parent *plan.Node) error {
	src := r.base
	if parent != nil {
		var ok bool
		src, ok = r.temps[parent.Set]
		if !ok {
			if r.skipped[parent.Set] {
				return r.computeIndividually(nodes, parent)
			}
			return fmt.Errorf("engine: intermediate %s not materialized", parent.Set)
		}
	}
	if r.budget.Limit() > 0 {
		var est int64
		for _, n := range nodes {
			est += r.hashEstimate(n.Set)
		}
		if r.budget.WouldExceed(est) {
			r.degrade(DegradeUnshare, nodes[0].Set, fmt.Sprintf(
				"%d-query shared scan needs ~%dB of concurrent hash state (used %d of %dB); splitting into individual passes",
				len(nodes), est, r.budget.Used(), r.budget.Limit()))
			return r.computeIndividually(nodes, parent)
		}
	}
	queries := make([]exec.MultiQuery, len(nodes))
	for i, n := range nodes {
		if parent == nil {
			queries[i] = exec.MultiQuery{GroupCols: n.Set.Columns(), Aggs: r.aggsFor(n), OutName: plan.TempName(n.Set)}
		} else {
			cols, rolled, err := r.mapToParent(src, n.Set, r.aggsFor(n))
			if err != nil {
				return err
			}
			queries[i] = exec.MultiQuery{GroupCols: cols, Aggs: rolled, OutName: plan.TempName(n.Set)}
		}
		if hint := int(r.ndvEstimate(n.Set)); hint > 0 {
			if hint > src.NumRows() {
				hint = src.NumRows()
			}
			queries[i].SizeHint = hint
		}
	}
	// One scan of the parent feeds every sibling.
	r.report.RowsScanned += int64(src.NumRows())
	r.report.QueriesRun += len(nodes)
	sharedReason := fmt.Sprintf("shared scan of %d sibling queries", len(nodes))
	var outs []*table.Table
	var err error
	if r.par > 1 {
		var st exec.ParStats
		outs, st, err = exec.GroupByHashMultiParallelGov(r.gov, src, queries, r.par)
		if err == nil {
			r.notePar(st)
			r.report.RehashesAvoided += st.RehashesAvoided
			for _, n := range nodes {
				r.noteKernelNamed(n.Set, "hash", sharedReason, src.NumRows(), 0, 0)
			}
		}
	} else {
		var stats []exec.KernelStats
		outs, stats, err = exec.GroupByHashMultiStatsGov(r.gov, src, queries)
		if err == nil {
			for i, n := range nodes {
				r.noteKernelNamed(n.Set, "hash", sharedReason, src.NumRows(), stats[i].Groups, stats[i].RehashesAvoided)
			}
		}
	}
	if err != nil {
		return nodeErr(nodes[0], err)
	}
	for i, n := range nodes {
		if n.IsIntermediate() {
			r.retain(n.Set, r.aggsFor(n), outs[i])
		}
		if n.Required {
			r.report.Results[n.Set] = r.projectResult(n, outs[i])
		}
	}
	return nil
}

// computeIndividually evaluates shared-scan candidates one at a time — the
// degraded form of computeShared that holds a single query's state at once.
func (r *planRun) computeIndividually(nodes []*plan.Node, parent *plan.Node) error {
	for _, n := range nodes {
		if err := r.compute(n, parent); err != nil {
			return err
		}
	}
	return nil
}

// fromBase computes a Group By over the base relation, exploiting an index
// when the physical design allows.
func (r *planRun) fromBase(n *plan.Node) (*table.Table, error) {
	cols := n.Set.Columns()
	aggs := r.aggsFor(n)
	r.report.QueriesRun++
	r.report.RowsScanned += int64(r.base.NumRows())
	name := plan.TempName(n.Set)
	if ix := index.BestFor(r.ex.cat.Indexes(r.base.Name()), n.Set); ix != nil {
		if countStarOnly(aggs) {
			// Index-only fast paths: counts off the boundaries, O(#full-key
			// groups) — no base-table scan at all.
			r.report.RowsScanned -= int64(r.base.NumRows())
			r.report.RowsScanned += int64(ix.NumGroups())
			var out *table.Table
			if ix.ExactMatch(n.Set) {
				out = exec.GroupByIndexCounts(r.base, ix, name)
			} else {
				out = exec.GroupByIndexPrefixCounts(r.base, ix, cols, name)
			}
			r.noteKernelNamed(n.Set, "index-counts",
				fmt.Sprintf("COUNT(*) off index %s boundaries", ix.Name()),
				ix.NumGroups(), out.NumRows(), 0)
			return renameAggs(out, aggs), nil
		}
		out, err := exec.GroupByIndexStreamGov(r.gov, r.base, ix, cols, aggs, name)
		if err == nil {
			r.noteKernelNamed(n.Set, "index-stream",
				fmt.Sprintf("rows clustered by index %s", ix.Name()),
				r.base.NumRows(), out.NumRows(), 0)
		}
		return out, err
	}
	return r.hashGroupBy(r.base, cols, aggs, n.Set, name)
}

// fromTemp computes a Group By over a materialized intermediate, rolling the
// aggregates up (COUNT(*) → SUM(cnt) etc., §5.2). When the intermediate was
// skipped under the memory budget, the node re-derives from the base
// relation with its original (un-rolled) aggregates instead of failing.
func (r *planRun) fromTemp(n *plan.Node, parentSet colset.Set) (*table.Table, error) {
	parent, ok := r.temps[parentSet]
	if !ok {
		if r.skipped[parentSet] {
			return r.fromBase(n)
		}
		return nil, fmt.Errorf("engine: intermediate %s not materialized", parentSet)
	}
	if !cache.Rollupable(r.aggsFor(n)) {
		// AVG does not roll up through an intermediate: re-derive this node
		// from the base relation (same fallback as a skipped temp) instead of
		// letting the planner's sharing decision break the aggregate.
		return r.fromBase(n)
	}
	return r.groupFromTable(parent, n.Set, r.aggsFor(n))
}

// groupFromTable evaluates GROUP BY set over a materialized intermediate.
func (r *planRun) groupFromTable(parent *table.Table, set colset.Set, aggs []exec.Agg) (*table.Table, error) {
	cols, rolled, err := r.mapToParent(parent, set, aggs)
	if err != nil {
		return nil, err
	}
	r.report.QueriesRun++
	r.report.RowsScanned += int64(parent.NumRows())
	return r.hashGroupBy(parent, cols, rolled, set, plan.TempName(set))
}

// mapToParent resolves base ordinals and aggregates against an intermediate
// table's schema (intermediates keep base column names; aggregate columns
// keep their output names).
func (r *planRun) mapToParent(parent *table.Table, set colset.Set, aggs []exec.Agg) ([]int, []exec.Agg, error) {
	baseCols := set.Columns()
	cols := make([]int, len(baseCols))
	for i, bc := range baseCols {
		name := r.base.Col(bc).Name()
		ord := parent.ColIndex(name)
		if ord < 0 {
			return nil, nil, fmt.Errorf("engine: intermediate %s lacks column %q", parent.Name(), name)
		}
		cols[i] = ord
	}
	rolled := make([]exec.Agg, len(aggs))
	for i, a := range aggs {
		src := parent.ColIndex(a.Name)
		if src < 0 {
			return nil, nil, fmt.Errorf("engine: intermediate %s lacks aggregate %q", parent.Name(), a.Name)
		}
		rolled[i] = a.Rollup(src)
	}
	return cols, rolled, nil
}

// expandCovered executes the level-wise covered sets of a CUBE/ROLLUP node
// (each covered set computed from its CoveredParent, mirroring the plan-cost
// pricing), keeping covered results available for required sets and for
// children of the plan tree that the operator covers.
func (r *planRun) expandCovered(n *plan.Node, own *table.Table) error {
	covered := coveredSets(n)
	results := map[colset.Set]*table.Table{n.Set: own}
	for _, s := range covered { // sorted descending by size via coveredSets
		if s == n.Set {
			continue
		}
		parentSet := plan.CoveredParent(n, s)
		parent, ok := results[parentSet]
		if !ok {
			return fmt.Errorf("engine: covered parent %s of %s not computed", parentSet, s)
		}
		out, err := r.groupFromTable(parent, s, r.aggsFor(n))
		if err != nil {
			return err
		}
		results[s] = out
	}
	// Hand covered results to required sets and covered children.
	for _, c := range n.Children {
		if !plan.Covered(n, c.Set) {
			continue
		}
		t := results[c.Set]
		if t == nil {
			return fmt.Errorf("engine: covered child %s missing from cube output", c.Set)
		}
		if c.Required {
			r.report.Results[c.Set] = r.projectResult(c, t)
		}
		if c.IsIntermediate() {
			r.retain(c.Set, r.aggsFor(n), t)
		}
	}
	// Required sets covered by the operator that are not explicit children do
	// not occur (the planner always makes them children), but requiredness of
	// the node itself is handled by compute().
	return nil
}

// coveredSets lists the operator's covered sets in descending size order so
// each level's parent is computed before it.
func coveredSets(n *plan.Node) []colset.Set {
	var out []colset.Set
	switch n.Op {
	case plan.OpCube:
		n.Set.Subsets(func(s colset.Set) bool {
			if !s.IsEmpty() {
				out = append(out, s)
			}
			return true
		})
	case plan.OpRollup:
		var prefix colset.Set
		for _, c := range n.RollupOrder {
			prefix = prefix.Add(c)
			out = append(out, prefix)
		}
	}
	colset.SortSets(out)
	// Descending by size.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// retain registers a materialized intermediate and updates storage and
// budget accounting. aggs are the aggregates the table carries (the node's
// union under §7.2), recorded so the drop-time promotion hook can describe
// the table. When keeping the table would exceed the memory budget, it is
// skipped instead: children re-derive from the base relation (the
// materialization trades memory for time; the budget reverses the trade).
func (r *planRun) retain(set colset.Set, aggs []exec.Agg, t *table.Table) {
	if _, dup := r.temps[set]; dup {
		return
	}
	exec.Testing.Fire("engine.retain")
	if r.noRetain {
		// Deliberate skip, not a budget degradation: the retry ladder asked
		// for a retention-free run, so no Degradation is recorded (the
		// attribution lives in RetryAttempt.Degraded).
		r.skipped[set] = true
		return
	}
	mem := t.MemSize()
	if r.budget.Limit() > 0 && r.budget.WouldExceed(mem) {
		r.skipped[set] = true
		r.degrade(DegradeRederive, set, fmt.Sprintf(
			"materializing %dB temp over budget (used %d of %dB); children re-derive from base",
			mem, r.budget.Used(), r.budget.Limit()))
		return
	}
	r.budget.Add(mem)
	r.tempBytes[set] = mem
	r.tempAggs[set] = aggs
	r.temps[set] = t
	r.report.TempTables++
	r.liveBytes += t.SizeBytes()
	if r.liveBytes > r.report.PeakTempBytes {
		r.report.PeakTempBytes = r.liveBytes
	}
}

// drop frees an intermediate and returns its budget charge, first handing the
// table to the promotion hook (the cache's chance to keep what the schedule
// is done with).
func (r *planRun) drop(set colset.Set) {
	t, ok := r.temps[set]
	if !ok {
		return
	}
	if r.promote != nil {
		r.promote(set, r.tempAggs[set], t)
	}
	r.liveBytes -= t.SizeBytes()
	delete(r.temps, set)
	r.budget.Release(r.tempBytes[set])
	delete(r.tempBytes, set)
	delete(r.tempAggs, set)
}

// countStarOnly reports whether every aggregate is COUNT(*) — the condition
// for the exact-match index fast path.
func countStarOnly(aggs []exec.Agg) bool {
	for _, a := range aggs {
		if a.Kind != exec.AggCountStar {
			return false
		}
	}
	return true
}

// renameAggs aligns the index fast path's single "cnt" column with the
// requested aggregate names (COUNT(*) only, possibly aliased).
func renameAggs(t *table.Table, aggs []exec.Agg) *table.Table {
	if len(aggs) == 1 && aggs[0].Name == "cnt" {
		return t
	}
	cols := make([]*table.Column, 0, t.NumCols()-1+len(aggs))
	cnt := t.ColByName("cnt")
	for i := 0; i < t.NumCols(); i++ {
		if t.Col(i) == cnt {
			continue
		}
		cols = append(cols, t.Col(i))
	}
	for _, a := range aggs {
		out := cnt.EmptyLike(a.Name)
		out.AppendCodes(cnt.Codes())
		cols = append(cols, out)
	}
	return table.FromColumns(t.Name(), cols)
}
