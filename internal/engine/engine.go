// Package engine executes logical plans: it walks the §4.4 storage-minimizing
// schedule, materializes intermediate Group By results as temp tables in the
// catalog, rolls aggregates up when computing from intermediates (§5.2),
// exploits indexes on base-table scans (§6.9), drops temp tables as soon as
// their children are computed, and accounts wall time, rows scanned and peak
// intermediate storage. It also packages the end-to-end strategies the
// experiments compare: naive, commercial GROUPING SETS emulation, GB-MQO and
// exhaustive.
package engine

import (
	"fmt"
	"time"

	"gbmqo/internal/catalog"
	"gbmqo/internal/colset"
	"gbmqo/internal/exec"
	"gbmqo/internal/index"
	"gbmqo/internal/plan"
	"gbmqo/internal/table"
)

// ExecReport describes one plan execution.
type ExecReport struct {
	// Wall is the end-to-end execution time.
	Wall time.Duration
	// RowsScanned totals the input rows consumed by all Group By operators.
	RowsScanned int64
	// QueriesRun counts executed Group By statements (covered cube/rollup
	// levels included).
	QueriesRun int
	// TempTables counts materialized intermediates.
	TempTables int
	// PeakTempBytes is the maximum bytes held by live temp tables.
	PeakTempBytes float64
	// ParallelOps counts Group By operators that ran on the morsel-parallel
	// path (operators under the size cutoff fall back to sequential and are
	// not counted).
	ParallelOps int
	// MaxWorkers is the largest morsel-worker count any operator used.
	MaxWorkers int
	// MergeTime totals the wall time parallel operators spent merging
	// worker-local hash tables into final results.
	MergeTime time.Duration
	// Results holds the output table per required grouping set.
	Results map[colset.Set]*table.Table
}

// Executor runs plans over a base table resolved through a catalog.
type Executor struct {
	cat *catalog.Catalog
}

// NewExecutor builds an executor over the catalog.
func NewExecutor(cat *catalog.Catalog) *Executor { return &Executor{cat: cat} }

// ExecOptions tunes plan execution.
type ExecOptions struct {
	// SharedScan computes sibling Group Bys (consecutive schedule steps with
	// the same parent) in one pass over the parent — the §5.1 shared-scan
	// technique. Index fast paths and CUBE/ROLLUP nodes are executed
	// individually regardless.
	SharedScan bool
	// PerSetAggs assigns different aggregates per required grouping set
	// (§7.2). Intermediate nodes carry the union of their required
	// descendants' aggregates; each required set's result is projected back
	// to its own.
	PerSetAggs map[colset.Set][]exec.Agg
	// Parallel executes independent sub-plans (trees hanging directly off the
	// base relation) concurrently, one goroutine per sub-plan bounded by
	// GOMAXPROCS. Temp tables are private to their sub-plan, so no
	// synchronization is needed beyond merging the reports; PeakTempBytes
	// becomes the (pessimistic) sum of concurrent per-sub-plan peaks.
	Parallel bool
	// Parallelism caps the morsel workers *inside* one Group By operator
	// (intra-operator parallelism, orthogonal to Parallel's inter-sub-plan
	// concurrency): 0 disables it, negative selects GOMAXPROCS, positive
	// values are used as-is. Operators whose input is below the exec size
	// cutoff stay sequential regardless, so tiny temp-table re-aggregations
	// never pay morsel overhead. Index fast paths are always sequential.
	Parallelism int
}

// ExecutePlan runs the plan against its base table. aggs are the aggregate
// specifications with source ordinals on the base table; nil selects
// COUNT(*). size estimates node result sizes for the §4.4 scheduler (nil
// falls back to a flat estimate, preserving plan order but not storage
// optimality).
func (ex *Executor) ExecutePlan(p *plan.Plan, aggs []exec.Agg, size plan.SizeFn) (*ExecReport, error) {
	return ex.ExecutePlanWith(p, aggs, size, ExecOptions{})
}

// ExecutePlanWith is ExecutePlan with execution options.
func (ex *Executor) ExecutePlanWith(p *plan.Plan, aggs []exec.Agg, size plan.SizeFn, opts ExecOptions) (*ExecReport, error) {
	base, ok := ex.cat.Table(p.BaseName)
	if !ok {
		return nil, fmt.Errorf("engine: unknown base table %q", p.BaseName)
	}
	if len(aggs) == 0 {
		aggs = []exec.Agg{exec.CountStar()}
	}
	if size == nil {
		size = func(colset.Set) float64 { return 1 }
	}
	run := &planRun{
		ex:     ex,
		base:   base,
		aggs:   aggs,
		par:    exec.ResolveWorkers(opts.Parallelism),
		temps:  map[colset.Set]*table.Table{},
		report: &ExecReport{Results: map[colset.Set]*table.Table{}},
	}
	if run.par > 1 {
		// The scan image is built lazily and shared by all operators over the
		// base table; force it before any morsel worker can race on it.
		base.RowImage()
	}
	if len(opts.PerSetAggs) > 0 {
		run.perSet = opts.PerSetAggs
		run.nodeAggs = map[*plan.Node][]exec.Agg{}
		for _, r := range p.Roots {
			run.buildAggUnion(r)
		}
	}
	steps := plan.Schedule(p, size)
	if opts.Parallel {
		return ex.executeParallel(run, p, steps, opts)
	}
	start := time.Now()
	for i := 0; i < len(steps); {
		step := steps[i]
		if step.Kind == plan.StepDrop {
			run.drop(step.Node.Set)
			i++
			continue
		}
		if opts.SharedScan {
			if batch := shareableRun(steps[i:], run); len(batch) > 1 {
				if err := run.computeShared(batch, step.Parent); err != nil {
					return nil, err
				}
				i += len(batch)
				continue
			}
		}
		if err := run.compute(step.Node, step.Parent); err != nil {
			return nil, err
		}
		i++
	}
	run.report.Wall = time.Since(start)
	return run.report, nil
}

// shareableRun returns the maximal prefix of steps that can execute as one
// shared scan: consecutive plain Group By computations from the same parent,
// none of which has an index fast path.
func shareableRun(steps []plan.Step, run *planRun) []*plan.Node {
	var batch []*plan.Node
	parent := steps[0].Parent
	for _, s := range steps {
		if s.Kind != plan.StepCompute || !sameParent(s.Parent, parent) || s.Node.Op != plan.OpGroupBy {
			break
		}
		if parent == nil && index.BestFor(run.ex.cat.Indexes(run.base.Name()), s.Node.Set) != nil {
			break // let the index path handle it individually
		}
		batch = append(batch, s.Node)
	}
	return batch
}

func sameParent(a, b *plan.Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Set == b.Set
}

// planRun is the state of one plan execution.
type planRun struct {
	ex        *Executor
	base      *table.Table
	aggs      []exec.Agg
	par       int // intra-operator morsel worker budget (≤1 = sequential)
	temps     map[colset.Set]*table.Table
	liveBytes float64
	report    *ExecReport

	// §7.2 state: per-required-set aggregates and the per-node unions.
	perSet   map[colset.Set][]exec.Agg
	nodeAggs map[*plan.Node][]exec.Agg
}

// hashGroupBy dispatches one hash aggregation to the morsel-parallel operator
// when the worker budget and input size allow, recording parallelism counters.
func (r *planRun) hashGroupBy(src *table.Table, cols []int, aggs []exec.Agg, name string) *table.Table {
	if r.par <= 1 {
		return exec.GroupByHash(src, cols, aggs, name)
	}
	out, st := exec.GroupByHashParallel(src, cols, aggs, name, r.par)
	r.notePar(st)
	return out
}

// notePar folds one operator's parallel-execution stats into the report.
func (r *planRun) notePar(st exec.ParStats) {
	if st.Workers <= 1 {
		return
	}
	r.report.ParallelOps++
	if st.Workers > r.report.MaxWorkers {
		r.report.MaxWorkers = st.Workers
	}
	r.report.MergeTime += st.Merge
}

// buildAggUnion computes, bottom-up, the union of aggregates each node must
// carry: its own (when required) plus everything its descendants need —
// the §7.2 union method. Aggregates are deduplicated by output name.
func (r *planRun) buildAggUnion(n *plan.Node) []exec.Agg {
	var union []exec.Agg
	seen := map[string]bool{}
	add := func(aggs []exec.Agg) {
		for _, a := range aggs {
			if !seen[a.Name] {
				seen[a.Name] = true
				union = append(union, a)
			}
		}
	}
	if n.Required {
		add(r.setAggs(n.Set))
	}
	for _, c := range n.Children {
		add(r.buildAggUnion(c))
	}
	if len(union) == 0 {
		add(r.aggs)
	}
	r.nodeAggs[n] = union
	return union
}

// setAggs returns a required set's own aggregates.
func (r *planRun) setAggs(set colset.Set) []exec.Agg {
	if a, ok := r.perSet[set]; ok && len(a) > 0 {
		return a
	}
	return r.aggs
}

// aggsFor returns the aggregates node n's computation must produce.
func (r *planRun) aggsFor(n *plan.Node) []exec.Agg {
	if r.nodeAggs == nil {
		return r.aggs
	}
	return r.nodeAggs[n]
}

// projectResult narrows a required node's result to its own grouping columns
// and aggregates (intermediates keep the union for their children).
func (r *planRun) projectResult(n *plan.Node, t *table.Table) *table.Table {
	if r.perSet == nil {
		return t
	}
	own := r.setAggs(n.Set)
	var ords []int
	n.Set.ForEach(func(c int) {
		ords = append(ords, t.ColIndex(r.base.Col(c).Name()))
	})
	for _, a := range own {
		ords = append(ords, t.ColIndex(a.Name))
	}
	for _, o := range ords {
		if o < 0 {
			return t // defensive: never drop data over a naming mismatch
		}
	}
	if len(ords) == t.NumCols() {
		return t
	}
	return t.Project(t.Name(), ords)
}

// compute evaluates one node from its parent (nil parent = base relation).
func (r *planRun) compute(n *plan.Node, parent *plan.Node) error {
	var out *table.Table
	var err error
	if parent == nil {
		out, err = r.fromBase(n)
	} else {
		out, err = r.fromTemp(n, parent.Set)
	}
	if err != nil {
		return err
	}
	switch n.Op {
	case plan.OpCube, plan.OpRollup:
		if err := r.expandCovered(n, out); err != nil {
			return err
		}
	}
	if n.IsIntermediate() {
		r.retain(n.Set, out)
	}
	if n.Required {
		r.report.Results[n.Set] = r.projectResult(n, out)
	}
	return nil
}

// computeShared evaluates several sibling nodes in one pass over their
// common parent (nil = base relation).
func (r *planRun) computeShared(nodes []*plan.Node, parent *plan.Node) error {
	src := r.base
	if parent != nil {
		var ok bool
		src, ok = r.temps[parent.Set]
		if !ok {
			return fmt.Errorf("engine: intermediate %s not materialized", parent.Set)
		}
	}
	queries := make([]exec.MultiQuery, len(nodes))
	for i, n := range nodes {
		if parent == nil {
			queries[i] = exec.MultiQuery{GroupCols: n.Set.Columns(), Aggs: r.aggsFor(n), OutName: plan.TempName(n.Set)}
		} else {
			cols, rolled, err := r.mapToParent(src, n.Set, r.aggsFor(n))
			if err != nil {
				return err
			}
			queries[i] = exec.MultiQuery{GroupCols: cols, Aggs: rolled, OutName: plan.TempName(n.Set)}
		}
	}
	// One scan of the parent feeds every sibling.
	r.report.RowsScanned += int64(src.NumRows())
	r.report.QueriesRun += len(nodes)
	var outs []*table.Table
	if r.par > 1 {
		var st exec.ParStats
		outs, st = exec.GroupByHashMultiParallel(src, queries, r.par)
		r.notePar(st)
	} else {
		outs = exec.GroupByHashMulti(src, queries)
	}
	for i, n := range nodes {
		if n.IsIntermediate() {
			r.retain(n.Set, outs[i])
		}
		if n.Required {
			r.report.Results[n.Set] = r.projectResult(n, outs[i])
		}
	}
	return nil
}

// fromBase computes a Group By over the base relation, exploiting an index
// when the physical design allows.
func (r *planRun) fromBase(n *plan.Node) (*table.Table, error) {
	cols := n.Set.Columns()
	aggs := r.aggsFor(n)
	r.report.QueriesRun++
	r.report.RowsScanned += int64(r.base.NumRows())
	name := plan.TempName(n.Set)
	if ix := index.BestFor(r.ex.cat.Indexes(r.base.Name()), n.Set); ix != nil {
		if countStarOnly(aggs) {
			// Index-only fast paths: counts off the boundaries, O(#full-key
			// groups) — no base-table scan at all.
			r.report.RowsScanned -= int64(r.base.NumRows())
			r.report.RowsScanned += int64(ix.NumGroups())
			var out *table.Table
			if ix.ExactMatch(n.Set) {
				out = exec.GroupByIndexCounts(r.base, ix, name)
			} else {
				out = exec.GroupByIndexPrefixCounts(r.base, ix, cols, name)
			}
			return renameAggs(out, aggs), nil
		}
		return exec.GroupByIndexStream(r.base, ix, cols, aggs, name), nil
	}
	return r.hashGroupBy(r.base, cols, aggs, name), nil
}

// fromTemp computes a Group By over a materialized intermediate, rolling the
// aggregates up (COUNT(*) → SUM(cnt) etc., §5.2).
func (r *planRun) fromTemp(n *plan.Node, parentSet colset.Set) (*table.Table, error) {
	parent, ok := r.temps[parentSet]
	if !ok {
		return nil, fmt.Errorf("engine: intermediate %s not materialized", parentSet)
	}
	return r.groupFromTable(parent, n.Set, r.aggsFor(n))
}

// groupFromTable evaluates GROUP BY set over a materialized intermediate.
func (r *planRun) groupFromTable(parent *table.Table, set colset.Set, aggs []exec.Agg) (*table.Table, error) {
	cols, rolled, err := r.mapToParent(parent, set, aggs)
	if err != nil {
		return nil, err
	}
	r.report.QueriesRun++
	r.report.RowsScanned += int64(parent.NumRows())
	return r.hashGroupBy(parent, cols, rolled, plan.TempName(set)), nil
}

// mapToParent resolves base ordinals and aggregates against an intermediate
// table's schema (intermediates keep base column names; aggregate columns
// keep their output names).
func (r *planRun) mapToParent(parent *table.Table, set colset.Set, aggs []exec.Agg) ([]int, []exec.Agg, error) {
	baseCols := set.Columns()
	cols := make([]int, len(baseCols))
	for i, bc := range baseCols {
		name := r.base.Col(bc).Name()
		ord := parent.ColIndex(name)
		if ord < 0 {
			return nil, nil, fmt.Errorf("engine: intermediate %s lacks column %q", parent.Name(), name)
		}
		cols[i] = ord
	}
	rolled := make([]exec.Agg, len(aggs))
	for i, a := range aggs {
		src := parent.ColIndex(a.Name)
		if src < 0 {
			return nil, nil, fmt.Errorf("engine: intermediate %s lacks aggregate %q", parent.Name(), a.Name)
		}
		rolled[i] = a.Rollup(src)
	}
	return cols, rolled, nil
}

// expandCovered executes the level-wise covered sets of a CUBE/ROLLUP node
// (each covered set computed from its CoveredParent, mirroring the plan-cost
// pricing), keeping covered results available for required sets and for
// children of the plan tree that the operator covers.
func (r *planRun) expandCovered(n *plan.Node, own *table.Table) error {
	covered := coveredSets(n)
	results := map[colset.Set]*table.Table{n.Set: own}
	for _, s := range covered { // sorted descending by size via coveredSets
		if s == n.Set {
			continue
		}
		parentSet := plan.CoveredParent(n, s)
		parent, ok := results[parentSet]
		if !ok {
			return fmt.Errorf("engine: covered parent %s of %s not computed", parentSet, s)
		}
		out, err := r.groupFromTable(parent, s, r.aggsFor(n))
		if err != nil {
			return err
		}
		results[s] = out
	}
	// Hand covered results to required sets and covered children.
	for _, c := range n.Children {
		if !plan.Covered(n, c.Set) {
			continue
		}
		t := results[c.Set]
		if t == nil {
			return fmt.Errorf("engine: covered child %s missing from cube output", c.Set)
		}
		if c.Required {
			r.report.Results[c.Set] = r.projectResult(c, t)
		}
		if c.IsIntermediate() {
			r.retain(c.Set, t)
		}
	}
	// Required sets covered by the operator that are not explicit children do
	// not occur (the planner always makes them children), but requiredness of
	// the node itself is handled by compute().
	return nil
}

// coveredSets lists the operator's covered sets in descending size order so
// each level's parent is computed before it.
func coveredSets(n *plan.Node) []colset.Set {
	var out []colset.Set
	switch n.Op {
	case plan.OpCube:
		n.Set.Subsets(func(s colset.Set) bool {
			if !s.IsEmpty() {
				out = append(out, s)
			}
			return true
		})
	case plan.OpRollup:
		var prefix colset.Set
		for _, c := range n.RollupOrder {
			prefix = prefix.Add(c)
			out = append(out, prefix)
		}
	}
	colset.SortSets(out)
	// Descending by size.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// retain registers a materialized intermediate and updates storage accounting.
func (r *planRun) retain(set colset.Set, t *table.Table) {
	if _, dup := r.temps[set]; dup {
		return
	}
	r.temps[set] = t
	r.report.TempTables++
	r.liveBytes += t.SizeBytes()
	if r.liveBytes > r.report.PeakTempBytes {
		r.report.PeakTempBytes = r.liveBytes
	}
}

// drop frees an intermediate.
func (r *planRun) drop(set colset.Set) {
	t, ok := r.temps[set]
	if !ok {
		return
	}
	r.liveBytes -= t.SizeBytes()
	delete(r.temps, set)
}

// countStarOnly reports whether every aggregate is COUNT(*) — the condition
// for the exact-match index fast path.
func countStarOnly(aggs []exec.Agg) bool {
	for _, a := range aggs {
		if a.Kind != exec.AggCountStar {
			return false
		}
	}
	return true
}

// renameAggs aligns the index fast path's single "cnt" column with the
// requested aggregate names (COUNT(*) only, possibly aliased).
func renameAggs(t *table.Table, aggs []exec.Agg) *table.Table {
	if len(aggs) == 1 && aggs[0].Name == "cnt" {
		return t
	}
	cols := make([]*table.Column, 0, t.NumCols()-1+len(aggs))
	cnt := t.ColByName("cnt")
	for i := 0; i < t.NumCols(); i++ {
		if t.Col(i) == cnt {
			continue
		}
		cols = append(cols, t.Col(i))
	}
	for _, a := range aggs {
		out := cnt.EmptyLike(a.Name)
		out.AppendCodes(cnt.Codes())
		cols = append(cols, out)
	}
	return table.FromColumns(t.Name(), cols)
}
