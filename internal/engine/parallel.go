package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"gbmqo/internal/colset"
	"gbmqo/internal/plan"
	"gbmqo/internal/table"
)

// executeParallel runs the schedule's per-sub-plan segments concurrently.
// Schedule emits each sub-plan's steps contiguously, and sub-plans share no
// intermediates (grouping sets are unique across the plan), so each segment
// runs in an isolated planRun. The base table's scan image is forced before
// fan-out because its lazy construction is the only shared mutable state.
func (ex *Executor) executeParallel(template *planRun, p *plan.Plan, steps []plan.Step, opts ExecOptions) (*ExecReport, error) {
	template.base.RowImage()
	segments := splitByRoot(steps)

	type result struct {
		report *ExecReport
		err    error
	}
	results := make([]result, len(segments))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	start := time.Now()
	for i, seg := range segments {
		wg.Add(1)
		go func(i int, seg []plan.Step) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			run := &planRun{
				ex:       ex,
				base:     template.base,
				aggs:     template.aggs,
				par:      template.par,
				perSet:   template.perSet,
				nodeAggs: template.nodeAggs,
				temps:    map[colset.Set]*table.Table{},
				report:   &ExecReport{Results: map[colset.Set]*table.Table{}},
			}
			results[i] = result{report: run.report, err: runSegment(run, seg, opts)}
		}(i, seg)
	}
	wg.Wait()

	merged := template.report
	for _, res := range results {
		if res.err != nil {
			return nil, res.err
		}
		merged.RowsScanned += res.report.RowsScanned
		merged.QueriesRun += res.report.QueriesRun
		merged.TempTables += res.report.TempTables
		merged.PeakTempBytes += res.report.PeakTempBytes
		merged.ParallelOps += res.report.ParallelOps
		if res.report.MaxWorkers > merged.MaxWorkers {
			merged.MaxWorkers = res.report.MaxWorkers
		}
		merged.MergeTime += res.report.MergeTime
		for set, t := range res.report.Results {
			merged.Results[set] = t
		}
	}
	merged.Wall = time.Since(start)
	return merged, nil
}

// runSegment executes one sub-plan's steps (same loop as the sequential
// path, minus the parallel re-entry).
func runSegment(run *planRun, steps []plan.Step, opts ExecOptions) error {
	for i := 0; i < len(steps); {
		step := steps[i]
		if step.Kind == plan.StepDrop {
			run.drop(step.Node.Set)
			i++
			continue
		}
		if opts.SharedScan {
			if batch := shareableRun(steps[i:], run); len(batch) > 1 {
				if err := run.computeShared(batch, step.Parent); err != nil {
					return err
				}
				i += len(batch)
				continue
			}
		}
		if err := run.compute(step.Node, step.Parent); err != nil {
			return err
		}
		i++
	}
	return nil
}

// splitByRoot cuts the schedule at every base-level computation (Parent ==
// nil), yielding one contiguous segment per sub-plan.
func splitByRoot(steps []plan.Step) [][]plan.Step {
	var segments [][]plan.Step
	startIdx := -1
	for i, s := range steps {
		if s.Kind == plan.StepCompute && s.Parent == nil {
			if startIdx >= 0 {
				segments = append(segments, steps[startIdx:i])
			}
			startIdx = i
		}
	}
	if startIdx >= 0 {
		segments = append(segments, steps[startIdx:])
	} else if len(steps) > 0 {
		// Defensive: a schedule that doesn't start at a root is malformed.
		panic(fmt.Sprintf("engine: schedule does not start at a sub-plan root (%d steps)", len(steps)))
	}
	return segments
}
