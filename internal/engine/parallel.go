package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gbmqo/internal/colset"
	"gbmqo/internal/exec"
	"gbmqo/internal/plan"
	"gbmqo/internal/table"
)

// executeParallel runs the schedule's per-sub-plan segments concurrently.
// Schedule emits each sub-plan's steps contiguously, and sub-plans share no
// intermediates (grouping sets are unique across the plan), so each segment
// runs in an isolated planRun — except the governor and memory budget, which
// are shared so cancellation stops every segment and PeakMem reflects true
// concurrent usage. The base table's scan image is forced before fan-out
// because its lazy construction is the only shared mutable state.
func (ex *Executor) executeParallel(template *planRun, p *plan.Plan, steps []plan.Step, opts ExecOptions) (*ExecReport, error) {
	template.base.RowImage()
	segments, err := splitByRoot(steps)
	if err != nil {
		return template.fail(err)
	}

	type result struct {
		report *ExecReport
		err    error
	}
	results := make([]result, len(segments))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	start := time.Now()
	for i, seg := range segments {
		wg.Add(1)
		go func(i int, seg []plan.Step) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			run := &planRun{
				ex:        ex,
				base:      template.base,
				aggs:      template.aggs,
				par:       template.par,
				gov:       template.gov,
				budget:    template.budget,
				size:      template.size,
				ndv:       template.ndv,
				promote:   template.promote,
				perSet:    template.perSet,
				nodeAggs:  template.nodeAggs,
				temps:     map[colset.Set]*table.Table{},
				tempBytes: map[colset.Set]int64{},
				tempAggs:  map[colset.Set][]exec.Agg{},
				skipped:   map[colset.Set]bool{},
				report:    &ExecReport{Results: map[colset.Set]*table.Table{}},
			}
			// A panic inside this segment must not kill the process: recover
			// it here (the sequential path's boundary recover lives in
			// ExecutePlanWith, which this goroutine escapes) and convert it to
			// the same typed error, releasing the segment's temps either way.
			defer func() {
				if pnc := recover(); pnc != nil {
					run.releaseAll()
					results[i] = result{report: run.report, err: &exec.ExecError{
						Step: run.curStep, Err: recoveredPanic(pnc)}}
				}
			}()
			err := runSteps(run, seg, opts)
			if err != nil {
				run.releaseAll()
			}
			results[i] = result{report: run.report, err: err}
		}(i, seg)
	}
	wg.Wait()

	merged := template.report
	var firstErr error
	for _, res := range results {
		if res.err != nil && firstErr == nil {
			firstErr = res.err
		}
		if res.report == nil {
			continue
		}
		merged.RowsScanned += res.report.RowsScanned
		merged.QueriesRun += res.report.QueriesRun
		merged.TempTables += res.report.TempTables
		merged.PeakTempBytes += res.report.PeakTempBytes
		merged.ParallelOps += res.report.ParallelOps
		if res.report.MaxWorkers > merged.MaxWorkers {
			merged.MaxWorkers = res.report.MaxWorkers
		}
		merged.MergeTime += res.report.MergeTime
		merged.SpillFallbacks += res.report.SpillFallbacks
		merged.RehashesAvoided += res.report.RehashesAvoided
		merged.Degradations = append(merged.Degradations, res.report.Degradations...)
		merged.Kernels = append(merged.Kernels, res.report.Kernels...)
		for set, t := range res.report.Results {
			merged.Results[set] = t
		}
	}
	merged.Wall = time.Since(start)
	template.finish()
	if firstErr != nil {
		if errors.Is(firstErr, context.Canceled) || errors.Is(firstErr, context.DeadlineExceeded) {
			merged.Cancelled = true
		}
		return merged, firstErr
	}
	annotateKernels(p, merged)
	return merged, nil
}

// splitByRoot cuts the schedule at every base-level computation (Parent ==
// nil), yielding one contiguous segment per sub-plan. A schedule that does
// not start at a sub-plan root is malformed and reported as an error.
func splitByRoot(steps []plan.Step) ([][]plan.Step, error) {
	var segments [][]plan.Step
	startIdx := -1
	for i, s := range steps {
		if s.Kind == plan.StepCompute && s.Parent == nil {
			if startIdx >= 0 {
				segments = append(segments, steps[startIdx:i])
			}
			startIdx = i
		}
	}
	if startIdx >= 0 {
		segments = append(segments, steps[startIdx:])
	} else if len(steps) > 0 {
		return nil, fmt.Errorf("engine: malformed schedule: none of the %d steps computes from the base relation, so no sub-plan root exists", len(steps))
	}
	return segments, nil
}
