package engine

import (
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/core"
	"gbmqo/internal/datagen"
)

func TestParallelExecutionMatchesSequential(t *testing.T) {
	e, li := newTestEngine(t, 8000)
	sets := scSets()
	seq, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO})
	if err != nil {
		t.Fatal(err)
	}
	par, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, li, sets, par.Report.Results)
	if par.Report.RowsScanned != seq.Report.RowsScanned {
		t.Fatalf("parallel scanned %d rows, sequential %d", par.Report.RowsScanned, seq.Report.RowsScanned)
	}
	if par.Report.QueriesRun != seq.Report.QueriesRun {
		t.Fatalf("parallel ran %d queries, sequential %d", par.Report.QueriesRun, seq.Report.QueriesRun)
	}
	if par.Report.TempTables != seq.Report.TempTables {
		t.Fatalf("parallel made %d temps, sequential %d", par.Report.TempTables, seq.Report.TempTables)
	}
}

func TestParallelWithSharedScan(t *testing.T) {
	e, li := newTestEngine(t, 5000)
	sets := scSets()
	res, err := e.Run(Request{
		Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO,
		Parallel: true, SharedScan: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, li, sets, res.Report.Results)
}

func TestParallelNaive(t *testing.T) {
	e, li := newTestEngine(t, 4000)
	sets := scSets()[:6]
	res, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: StrategyNaive, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, li, sets, res.Report.Results)
}

func TestParallelWithCubePlan(t *testing.T) {
	e, li := newTestEngine(t, 4000)
	var sets []colset.Set
	colset.Of(datagen.LReturnFlag, datagen.LLineStatus, datagen.LShipMode).Subsets(func(s colset.Set) bool {
		if !s.IsEmpty() {
			sets = append(sets, s)
		}
		return true
	})
	res, err := e.Run(Request{
		Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO,
		Core:     core.Options{ConsiderCubeRollup: true},
		Parallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, li, sets, res.Report.Results)
}

// TestIntraOperatorParallelMatchesSequential checks the morsel-parallel
// aggregation path end to end: same results, same scan/query accounting as
// the sequential engine, parallel counters populated, and the reported
// parallel plan cost discounted below the sequential estimate (which still
// governs plan choice).
func TestIntraOperatorParallelMatchesSequential(t *testing.T) {
	e, li := newTestEngine(t, 40_000) // > 2 morsels so base scans go parallel
	sets := scSets()
	seq, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO})
	if err != nil {
		t.Fatal(err)
	}
	par, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, li, sets, par.Report.Results)
	if par.Report.RowsScanned != seq.Report.RowsScanned {
		t.Fatalf("parallel scanned %d rows, sequential %d", par.Report.RowsScanned, seq.Report.RowsScanned)
	}
	if par.Report.QueriesRun != seq.Report.QueriesRun {
		t.Fatalf("parallel ran %d queries, sequential %d", par.Report.QueriesRun, seq.Report.QueriesRun)
	}
	if par.Report.ParallelOps == 0 || par.Report.MaxWorkers < 2 {
		t.Fatalf("no operator went parallel: ops=%d workers=%d", par.Report.ParallelOps, par.Report.MaxWorkers)
	}
	if seq.Report.ParallelOps != 0 || seq.Report.MaxWorkers != 0 {
		t.Fatalf("sequential run reported parallel ops: %+v", seq.Report)
	}
	if par.PlanCostPar >= par.PlanCostSeq {
		t.Fatalf("parallel cost %v not discounted below sequential %v", par.PlanCostPar, par.PlanCostSeq)
	}
	if seq.PlanCostPar != seq.PlanCostSeq {
		t.Fatalf("sequential run should report equal costs: %v vs %v", seq.PlanCostPar, seq.PlanCostSeq)
	}
}

// TestNestedParallelism exercises inter-sub-plan goroutines and
// intra-operator morsel workers at the same time (plus shared scans) — the
// nesting the race detector must bless in CI's `go test -race`.
func TestNestedParallelism(t *testing.T) {
	e, li := newTestEngine(t, 40_000)
	sets := scSets()
	for _, shared := range []bool{false, true} {
		res, err := e.Run(Request{
			Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO,
			Parallel: true, SharedScan: shared, Parallelism: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertResultsMatch(t, li, sets, res.Report.Results)
		if res.Report.ParallelOps == 0 {
			t.Fatal("no operator went parallel under nested parallelism")
		}
	}
}

func TestParallelRepeatedRunsDeterministicResults(t *testing.T) {
	e, li := newTestEngine(t, 3000)
	sets := scSets()[:8]
	for trial := 0; trial < 5; trial++ {
		res, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO, Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		assertResultsMatch(t, li, sets, res.Report.Results)
	}
}
