package engine

import (
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/core"
	"gbmqo/internal/datagen"
)

func TestParallelExecutionMatchesSequential(t *testing.T) {
	e, li := newTestEngine(t, 8000)
	sets := scSets()
	seq, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO})
	if err != nil {
		t.Fatal(err)
	}
	par, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, li, sets, par.Report.Results)
	if par.Report.RowsScanned != seq.Report.RowsScanned {
		t.Fatalf("parallel scanned %d rows, sequential %d", par.Report.RowsScanned, seq.Report.RowsScanned)
	}
	if par.Report.QueriesRun != seq.Report.QueriesRun {
		t.Fatalf("parallel ran %d queries, sequential %d", par.Report.QueriesRun, seq.Report.QueriesRun)
	}
	if par.Report.TempTables != seq.Report.TempTables {
		t.Fatalf("parallel made %d temps, sequential %d", par.Report.TempTables, seq.Report.TempTables)
	}
}

func TestParallelWithSharedScan(t *testing.T) {
	e, li := newTestEngine(t, 5000)
	sets := scSets()
	res, err := e.Run(Request{
		Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO,
		Parallel: true, SharedScan: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, li, sets, res.Report.Results)
}

func TestParallelNaive(t *testing.T) {
	e, li := newTestEngine(t, 4000)
	sets := scSets()[:6]
	res, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: StrategyNaive, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, li, sets, res.Report.Results)
}

func TestParallelWithCubePlan(t *testing.T) {
	e, li := newTestEngine(t, 4000)
	var sets []colset.Set
	colset.Of(datagen.LReturnFlag, datagen.LLineStatus, datagen.LShipMode).Subsets(func(s colset.Set) bool {
		if !s.IsEmpty() {
			sets = append(sets, s)
		}
		return true
	})
	res, err := e.Run(Request{
		Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO,
		Core:     core.Options{ConsiderCubeRollup: true},
		Parallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsMatch(t, li, sets, res.Report.Results)
}

func TestParallelRepeatedRunsDeterministicResults(t *testing.T) {
	e, li := newTestEngine(t, 3000)
	sets := scSets()[:8]
	for trial := 0; trial < 5; trial++ {
		res, err := e.Run(Request{Table: "lineitem", Sets: sets, Strategy: StrategyGBMQO, Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		assertResultsMatch(t, li, sets, res.Report.Results)
	}
}
