package engine

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/datagen"
	"gbmqo/internal/exec"
	"gbmqo/internal/table"
)

// rowsOf extracts rows [lo,hi) of t as append-ready value slices.
func rowsOf(t *table.Table, lo, hi int) [][]table.Value {
	rows := make([][]table.Value, 0, hi-lo)
	for r := lo; r < hi; r++ {
		row := make([]table.Value, t.NumCols())
		for c := 0; c < t.NumCols(); c++ {
			row[c] = t.Col(c).Value(r)
		}
		rows = append(rows, row)
	}
	return rows
}

// deltaRows generates n lineitem-shaped rows from an independent seed, so
// appends intern a mix of existing and brand-new dictionary values.
func deltaRows(n int, seed int64) [][]table.Value {
	src := datagen.Lineitem(datagen.LineitemOpts{Rows: n, Seed: seed})
	return rowsOf(src, 0, n)
}

var mergeableAggs = []exec.Agg{
	exec.CountStar(),
	{Kind: exec.AggSum, Col: datagen.LQuantity, Name: "sum_qty"},
	{Kind: exec.AggMin, Col: datagen.LShipDate, Name: "min_sd"},
	{Kind: exec.AggMax, Col: datagen.LShipDate, Name: "max_sd"},
}

// TestAppendRefreshRollsForward: cached mergeable entries survive an append
// via delta aggregation + merge — served at the new epoch without a miss, and
// byte-identical to recomputing over the appended table from scratch.
func TestAppendRefreshRollsForward(t *testing.T) {
	e, _ := newCachedEngine(t, 4000, 64<<20)
	// Neither set subsumes the other, so both are "finest ancestors" and both
	// must be refreshed eagerly.
	sets := []colset.Set{colset.Of(datagen.LReturnFlag), colset.Of(datagen.LShipMode)}
	req := Request{Table: "lineitem", Sets: sets, Aggs: mergeableAggs, UseCache: true}
	warm, err := e.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.Admissions < len(sets) {
		t.Fatalf("priming admitted %d entries", warm.Cache.Admissions)
	}

	rep, err := e.Append("lineitem", deltaRows(500, 99))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 500 || rep.TotalRows != 4500 {
		t.Fatalf("report rows = %d/%d", rep.Rows, rep.TotalRows)
	}
	if rep.Delta != 1 {
		t.Fatalf("append epoch delta = %d", rep.Delta)
	}
	// The priming run may also have cached the merged superset it used to
	// share the scan; that superset subsumes both requested sets, in which
	// case only it is refreshed and the descendants are lazy-dropped. Either
	// way: something rolled forward, nothing was left for the stale sweep.
	if rep.Refreshed < 1 || rep.Refreshed+rep.Dropped < len(sets) || rep.Invalidated != 0 {
		t.Fatalf("refreshed %d, dropped %d, invalidated %d over %d sets",
			rep.Refreshed, rep.Dropped, rep.Invalidated, len(sets))
	}

	again, err := e.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cache.Misses != 0 || again.Cache.Hits+again.Cache.AncestorHits != len(sets) {
		t.Fatalf("post-append run not served from maintained entries: %+v", again.Cache)
	}
	coldReq := req
	coldReq.UseCache = false
	cold, err := e.Run(coldReq)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sets {
		tablesIdentical(t, "refreshed vs cold "+s.String(), again.Report.Results[s], cold.Report.Results[s])
	}
}

// TestAppendFinestAncestorLazyDrop: with a cached superset covering a cached
// subset, only the superset (the finest ancestor) is maintained eagerly; the
// subset is dropped, counted as pending lazy work, re-derived on demand from
// the refreshed ancestor, and the pending count drains when that happens.
func TestAppendFinestAncestorLazyDrop(t *testing.T) {
	e, _ := newCachedEngine(t, 4000, 64<<20)
	super := colset.Of(datagen.LReturnFlag, datagen.LShipMode)
	sub := colset.Of(datagen.LShipMode)
	req := Request{Table: "lineitem", Sets: []colset.Set{super, sub}, Aggs: mergeableAggs, UseCache: true}
	if _, err := e.Run(req); err != nil {
		t.Fatal(err)
	}

	rep, err := e.Append("lineitem", deltaRows(300, 7))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refreshed != 1 || rep.Dropped != 1 {
		t.Fatalf("refreshed %d, dropped %d, want 1/1", rep.Refreshed, rep.Dropped)
	}
	as := e.AppendStats()["lineitem"]
	if as.Delta != 1 || as.PendingLazy != 1 || as.Rows != 4300 {
		t.Fatalf("append stats = %+v", as)
	}

	cold, err := e.Run(Request{Table: "lineitem", Sets: []colset.Set{sub}, Aggs: mergeableAggs})
	if err != nil {
		t.Fatal(err)
	}
	derived, err := e.Run(Request{Table: "lineitem", Sets: []colset.Set{sub}, Aggs: mergeableAggs, UseCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if derived.Cache.AncestorHits != 1 {
		t.Fatalf("dropped subset not re-derived from refreshed ancestor: %+v", derived.Cache)
	}
	tablesIdentical(t, "lazy re-derivation", derived.Report.Results[sub], cold.Report.Results[sub])
	if got := e.AppendStats()["lineitem"].PendingLazy; got != 0 {
		t.Fatalf("pending lazy after re-derivation = %d", got)
	}
}

// TestAppendAvgInvalidates: AVG accumulator state is not mergeable across
// segments, so cached AVG entries fall back to invalidation — and the next
// query recomputes correctly over the appended table.
func TestAppendAvgInvalidates(t *testing.T) {
	e, _ := newCachedEngine(t, 3000, 64<<20)
	aggs := []exec.Agg{{Kind: exec.AggAvg, Col: datagen.LQuantity, Name: "avg_qty"}}
	set := colset.Of(datagen.LReturnFlag)
	req := Request{Table: "lineitem", Sets: []colset.Set{set}, Aggs: aggs, UseCache: true}
	if _, err := e.Run(req); err != nil {
		t.Fatal(err)
	}

	rep, err := e.Append("lineitem", deltaRows(200, 13))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refreshed != 0 || rep.Invalidated == 0 {
		t.Fatalf("AVG entry not invalidated: %+v", rep)
	}

	cold, err := e.Run(Request{Table: "lineitem", Sets: []colset.Set{set}, Aggs: aggs})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := e.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.Misses != 1 || warm.Cache.Hits != 0 {
		t.Fatalf("stale AVG entry served after append: %+v", warm.Cache)
	}
	tablesIdentical(t, "avg after append", warm.Report.Results[set], cold.Report.Results[set])
}

// TestAppendChainDifferential drives several appends with warm queries in
// between and checks every answer against a cold engine holding the same
// final state — the repeatedly rolled-forward entries never drift.
func TestAppendChainDifferential(t *testing.T) {
	e, _ := newCachedEngine(t, 2000, 64<<20)
	sets := []colset.Set{
		colset.Of(datagen.LReturnFlag),
		colset.Of(datagen.LShipMode, datagen.LLineStatus),
	}
	req := Request{Table: "lineitem", Sets: sets, Aggs: mergeableAggs, UseCache: true}
	if _, err := e.Run(req); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 4; step++ {
		rep, err := e.Append("lineitem", deltaRows(150, int64(100+step)))
		if err != nil {
			t.Fatalf("append %d: %v", step, err)
		}
		if rep.Delta != uint64(step+1) {
			t.Fatalf("append %d epoch delta = %d", step, rep.Delta)
		}
		warm, err := e.Run(req)
		if err != nil {
			t.Fatalf("query %d: %v", step, err)
		}
		coldReq := req
		coldReq.UseCache = false
		cold, err := e.Run(coldReq)
		if err != nil {
			t.Fatalf("cold %d: %v", step, err)
		}
		for _, s := range sets {
			tablesIdentical(t, "chain step "+s.String(), warm.Report.Results[s], cold.Report.Results[s])
		}
	}
}

// TestAppendValidationLeavesStateIntact: malformed rows (bad arity, bad type),
// unknown tables and reserved names error out before any shared state is
// touched — the table, its epoch, and the cached entries all keep working.
func TestAppendValidationLeavesStateIntact(t *testing.T) {
	e, li := newCachedEngine(t, 1000, 64<<20)
	set := colset.Of(datagen.LReturnFlag)
	req := Request{Table: "lineitem", Sets: []colset.Set{set}, Aggs: mergeableAggs, UseCache: true}
	if _, err := e.Run(req); err != nil {
		t.Fatal(err)
	}

	short := deltaRows(1, 1)[0][:3]
	if _, err := e.Append("lineitem", [][]table.Value{short}); err == nil || !strings.Contains(err.Error(), "values, want") {
		t.Fatalf("arity error = %v", err)
	}
	bad := deltaRows(1, 1)[0]
	bad[datagen.LQuantity] = table.Str("not-a-quantity")
	if _, err := e.Append("lineitem", [][]table.Value{bad}); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if _, err := e.Append("nope", deltaRows(1, 1)); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := e.Append("__scratch", nil); err == nil {
		t.Fatal("reserved table accepted")
	}

	cur, ep, ok := e.Catalog().TableEpoch("lineitem")
	if !ok || cur != li || ep.Delta != 0 {
		t.Fatalf("failed appends disturbed the catalog: ep=%+v same=%v", ep, cur == li)
	}
	again, err := e.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cache.Hits != 1 {
		t.Fatalf("failed appends disturbed the cache: %+v", again.Cache)
	}
}

// TestAppendEmptyIsNoop: zero rows is a valid call that advances nothing.
func TestAppendEmptyIsNoop(t *testing.T) {
	e, _ := newCachedEngine(t, 500, 64<<20)
	rep, err := e.Append("lineitem", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 0 || rep.Delta != 0 || rep.Refreshed != 0 {
		t.Fatalf("empty append report = %+v", rep)
	}
	if ep := e.Catalog().Epoch("lineitem"); ep.Delta != 0 {
		t.Fatalf("empty append bumped the epoch: %+v", ep)
	}
}

// TestAppendDropsStaleStats: statistics built over the pre-append snapshot
// are reclaimed by the append sweep instead of lingering until table drop.
func TestAppendDropsStaleStats(t *testing.T) {
	e, li := newCachedEngine(t, 1500, 64<<20)
	// Force NDV statistics to be built over the current snapshot.
	_ = e.Catalog().Stats().NDV(li, colset.Of(datagen.LReturnFlag))
	if got := e.Catalog().Stats().Retained(); got != 1 {
		t.Fatalf("retained before append = %d", got)
	}
	if _, err := e.Append("lineitem", deltaRows(100, 3)); err != nil {
		t.Fatal(err)
	}
	if got := e.Catalog().Stats().Retained(); got != 0 {
		t.Fatalf("stale snapshot statistics retained after append: %d", got)
	}
}

// TestAppendObserver: the observer sees every outcome — reports on success,
// the error on failure.
func TestAppendObserver(t *testing.T) {
	e, _ := newCachedEngine(t, 500, 64<<20)
	var mu sync.Mutex
	var reps []*AppendReport
	var errs []error
	e.SetAppendObserver(func(rep *AppendReport, err error) {
		mu.Lock()
		defer mu.Unlock()
		reps = append(reps, rep)
		errs = append(errs, err)
	})
	if _, err := e.Append("lineitem", deltaRows(50, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Append("nope", nil); err == nil {
		t.Fatal("unknown table accepted")
	}
	e.SetAppendObserver(nil)
	if _, err := e.Append("lineitem", deltaRows(10, 6)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reps) != 2 {
		t.Fatalf("observer saw %d calls, want 2", len(reps))
	}
	if reps[0] == nil || reps[0].Rows != 50 || errs[0] != nil {
		t.Fatalf("success call = (%+v, %v)", reps[0], errs[0])
	}
	if reps[1] != nil || errs[1] == nil {
		t.Fatalf("failure call = (%+v, %v)", reps[1], errs[1])
	}
}

// TestAppendQueryEvictChurnRace is the rapid-churn stress: concurrent
// appenders, warm queriers and cache shrinkers against a deliberately tiny
// cache. Run under -race. Invariants: no errors, no checksum corruptions,
// and once the churn settles the warm path agrees byte-for-byte with a cold
// recompute of the final state.
func TestAppendQueryEvictChurnRace(t *testing.T) {
	e, _ := newCachedEngine(t, 1500, 192<<10)
	sets := []colset.Set{
		colset.Of(datagen.LReturnFlag),
		colset.Of(datagen.LShipMode),
		colset.Of(datagen.LReturnFlag, datagen.LLineStatus),
		colset.Of(datagen.LShipMode, datagen.LShipInstruct),
	}
	const (
		appends     = 8
		queriers    = 4
		queryRounds = 12
	)
	var wg sync.WaitGroup
	errCh := make(chan error, appends+queriers*queryRounds)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			if _, err := e.Append("lineitem", deltaRows(60, int64(i))); err != nil {
				errCh <- err
			}
		}
	}()
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(q)))
			for i := 0; i < queryRounds; i++ {
				s := sets[rng.Intn(len(sets))]
				req := Request{Table: "lineitem", Sets: []colset.Set{s},
					Aggs: mergeableAggs, UseCache: true}
				if _, err := e.Run(req); err != nil {
					errCh <- err
				}
				if i%4 == 3 {
					e.ResultCache().ShrinkTo(64 << 10)
				}
			}
		}(q)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("churn error: %v", err)
	}

	st := e.ResultCache().Snapshot()
	if st.Corruptions != 0 {
		t.Fatalf("checksum corruptions during churn: %d", st.Corruptions)
	}
	req := Request{Table: "lineitem", Sets: sets, Aggs: mergeableAggs}
	cold, err := e.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	req.UseCache = true
	if _, err := e.Run(req); err != nil { // repopulate at the final epoch
		t.Fatal(err)
	}
	warm, err := e.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sets {
		tablesIdentical(t, "post-churn "+s.String(), warm.Report.Results[s], cold.Report.Results[s])
	}
}
