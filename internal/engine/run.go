package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"gbmqo/internal/baseline"
	"gbmqo/internal/cache"
	"gbmqo/internal/catalog"
	"gbmqo/internal/colset"
	"gbmqo/internal/core"
	"gbmqo/internal/cost"
	"gbmqo/internal/exec"
	"gbmqo/internal/plan"
	"gbmqo/internal/stats"
	"gbmqo/internal/table"
)

// Strategy selects how the logical plan for a grouping-sets request is built.
type Strategy int

// Strategies compared throughout §6. The zero value is GB-MQO, so requests
// default to the paper's optimizer.
const (
	// StrategyGBMQO runs the paper's hill-climbing optimizer.
	StrategyGBMQO Strategy = iota
	// StrategyNaive computes every query directly from the base relation.
	StrategyNaive
	// StrategyGroupingSets emulates the commercial GROUPING SETS plan.
	StrategyGroupingSets
	// StrategyExhaustive finds the optimal binary type-(b) plan (small inputs
	// only; §6.3).
	StrategyExhaustive
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyNaive:
		return "naive"
	case StrategyGroupingSets:
		return "groupingsets"
	case StrategyGBMQO:
		return "gbmqo"
	case StrategyExhaustive:
		return "exhaustive"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ModelKind selects the cost model for optimizing strategies (§3.2).
type ModelKind int

// Cost models.
const (
	// ModelOptimizer is the what-if, physical-design-aware model (§3.2.2).
	ModelOptimizer ModelKind = iota
	// ModelCardinality is the |u|-per-edge model (§3.2.1).
	ModelCardinality
)

// Request describes one multi-Group-By computation.
type Request struct {
	// Table is the base relation name in the catalog.
	Table string
	// Sets are the required grouping sets (base column ordinals).
	Sets []colset.Set
	// Aggs are the aggregates (default COUNT(*)), shared by every set.
	Aggs []exec.Agg
	// PerSetAggs optionally assigns different aggregates per grouping set
	// (§7.2). Intermediate nodes then carry the union of the aggregates
	// their required descendants need (the paper's union method), and each
	// set's result is projected back to its own aggregates. Sets absent from
	// the map fall back to Aggs.
	PerSetAggs map[colset.Set][]exec.Agg
	// Strategy picks the planner.
	Strategy Strategy
	// Model picks the cost model for GB-MQO/exhaustive.
	Model ModelKind
	// Core forwards search options (pruning, binary restriction, cube/rollup,
	// storage budget). Model/NAggs/SizeFn fields are filled in by Run.
	Core core.Options
	// SharedScan enables the §5.1 shared-scan execution technique: sibling
	// Group Bys run in one pass over their common parent.
	SharedScan bool
	// Parallel executes independent sub-plans concurrently.
	Parallel bool
	// Parallelism caps the morsel workers inside one Group By operator
	// (0 = off, negative = GOMAXPROCS; see ExecOptions.Parallelism).
	Parallelism int
	// Context cancels or deadlines execution (see ExecOptions.Context). Nil
	// means context.Background().
	Context context.Context
	// MemBudget bounds execution working memory in bytes with graceful
	// degradation (see ExecOptions.MemBudget). 0 means unlimited. When a
	// result cache is configured it participates in this budget: the cache is
	// shrunk to at most half the budget up front and its residency is
	// subtracted from what execution may use, so under pressure cached results
	// are evicted before operators degrade.
	MemBudget int64
	// UseCache serves and populates the engine's cross-query result cache for
	// this request (no-op when no cache is configured via SetCache). Tables
	// whose name carries the reserved "__" prefix — ephemeral derived tables —
	// always bypass the cache.
	UseCache bool
	// Retry bounds the engine's transient-failure retry loop for this request
	// (see RetryPolicy). The zero value disables retries: the request gets
	// exactly one attempt, preserving historical semantics.
	Retry RetryPolicy
	// NoRetain skips materializing intermediate temp tables; children
	// re-derive from the base relation via the same machinery the memory
	// budget uses (byte-identical results, more scan work). The retry
	// degradation ladder sets it so a fault in retention or promotion cannot
	// recur on the retry.
	NoRetain bool
	// AllowPartial opts this request into partial results under sharded
	// execution: when a shard is open or exhausts its retries, the coordinator
	// merges the surviving shards and attributes the gap in
	// ExecReport.ShardsFailed/ShardCoverage instead of failing the whole
	// request. Ignored (full results or error) when no shard router is
	// installed or the request is not sharded.
	AllowPartial bool
}

// RunResult bundles the chosen plan, its execution report, and search effort.
type RunResult struct {
	Plan     *plan.Plan
	Report   *ExecReport
	Search   core.SearchStats
	ModelUsd cost.Model
	// PlanCostSeq and PlanCostPar price the chosen plan with the request's
	// cost model sequentially and at the requested intra-operator degree of
	// parallelism (equal when Parallelism is off). Plan *choice* always uses
	// the sequential cost — the paper's model — so turning parallelism on
	// never changes plan shape; both figures are reported so the discount is
	// visible.
	PlanCostSeq float64
	PlanCostPar float64
	// Degradations lists the graceful-degradation decisions execution took
	// under the request's MemBudget (also available via Report.Degradations;
	// surfaced here so budget-sensitive callers see them without digging).
	Degradations []Degradation
	// Cache describes how the cross-query result cache served this request
	// (also available via Report.Cache; all zero when caching was off).
	Cache CacheCounters
}

// Engine ties the catalog, statistics and executor into the public runtime.
type Engine struct {
	cat   *catalog.Catalog
	exec  *Executor
	cache *cache.Cache
	// runObs, when set, observes every Run outcome (see SetRunObserver). Held
	// in an atomic so installation never races with concurrent Run calls.
	runObs atomic.Pointer[func(*RunResult, error)]
	// breakers, when set, holds the per-table circuit breakers every Run
	// consults (see EnableBreakers). Atomic for the same reason as runObs.
	breakers atomic.Pointer[breakerSet]
	// router, when set, is offered every Run before the local attempt loop
	// (see SetShardRouter). Atomic for the same reason as runObs.
	router atomic.Pointer[ShardRouter]

	// appendMu serializes Append per engine: appends extend shared dictionary
	// and code backing in place, which is only safe when exactly one append
	// per lineage runs at a time and always extends the newest snapshot.
	appendMu sync.Mutex
	// lazyMu guards pendingLazy, the per-table count of cached entries append
	// maintenance dropped for lazy re-derivation that have not yet been
	// re-derived (the /healthz refresh lag).
	lazyMu      sync.Mutex
	pendingLazy map[string]int
	// appendObs, when set, observes every Append outcome (see
	// SetAppendObserver). Atomic for the same reason as runObs.
	appendObs atomic.Pointer[func(*AppendReport, error)]
}

// ShardRouter is the hook a sharded scatter-gather coordinator installs via
// SetShardRouter. It is offered every request after the table's circuit
// breaker admits it; returning handled=false declines the request (not
// sharded, unknown table, unsupported shape) and execution falls through to
// the engine's own attempt loop. When handled=true the router owns the whole
// execution — retries, hedging and partial-result policy included — and the
// engine only records the outcome against the table's breaker.
type ShardRouter func(Request) (*RunResult, error, bool)

// SetShardRouter installs (or, with nil, removes) the shard router consulted
// by every Run. Safe to call concurrently with in-flight runs.
func (e *Engine) SetShardRouter(fn ShardRouter) {
	if fn == nil {
		e.router.Store(nil)
		return
	}
	e.router.Store(&fn)
}

// New creates an engine over a fresh catalog with the given statistics
// service (nil selects GEE sampling with defaults).
func New(svc *stats.Service) *Engine {
	if svc == nil {
		svc = stats.NewService(stats.GEE, 0, 1)
	}
	cat := catalog.New(svc)
	return &Engine{cat: cat, exec: NewExecutor(cat)}
}

// Catalog exposes the engine's catalog (registration, indexes).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// SetCache installs (or, with nil, removes) the cross-query result cache.
// Requests opt in per call with Request.UseCache.
func (e *Engine) SetCache(c *cache.Cache) { e.cache = c }

// ResultCache returns the installed cross-query result cache (nil when none).
func (e *Engine) ResultCache() *cache.Cache { return e.cache }

// CostEnv builds a costing environment for a registered table, wiring in its
// current physical design.
func (e *Engine) CostEnv(tableName string) (*cost.Env, error) {
	t, ok := e.cat.Table(tableName)
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", tableName)
	}
	return cost.NewEnv(t, e.cat.Stats(), e.cat.Indexes(tableName)), nil
}

// Plan builds the logical plan for a request without executing it.
func (e *Engine) Plan(req Request) (*plan.Plan, core.SearchStats, cost.Model, error) {
	t, ok := e.cat.Table(req.Table)
	if !ok {
		return nil, core.SearchStats{}, nil, fmt.Errorf("engine: unknown table %q", req.Table)
	}
	env := cost.NewEnv(t, e.cat.Stats(), e.cat.Indexes(req.Table))
	var model cost.Model
	if req.Model == ModelCardinality {
		model = cost.NewCardinality(env)
	} else {
		model = cost.NewOptimizer(env, cost.Coefficients{})
	}
	nAggs := len(req.Aggs)
	if nAggs == 0 {
		nAggs = 1
	}
	switch req.Strategy {
	case StrategyNaive:
		return baseline.Naive(req.Table, t.ColNames(), req.Sets), core.SearchStats{}, model, nil
	case StrategyGroupingSets:
		return baseline.GroupingSets(req.Table, t.ColNames(), req.Sets), core.SearchStats{}, model, nil
	case StrategyExhaustive:
		p, c, err := core.ExhaustiveOptimize(req.Table, t.ColNames(), req.Sets, model, nAggs)
		return p, core.SearchStats{FinalCost: c}, model, err
	case StrategyGBMQO:
		opts := req.Core
		opts.Model = model
		opts.NAggs = nAggs
		if opts.StorageBudget > 0 && opts.SizeFn == nil {
			opts.SizeFn = e.sizeFn(env, nAggs)
		}
		p, st, err := core.Optimize(req.Table, t.ColNames(), req.Sets, opts)
		return p, st, model, err
	default:
		return nil, core.SearchStats{}, nil, fmt.Errorf("engine: unknown strategy %v", req.Strategy)
	}
}

// SetRunObserver installs fn to observe every Run outcome — the hook the
// observability registry uses to accumulate cross-request governance counters
// (rows scanned, degradations, cancellations) without threading a registry
// through every layer. fn must be safe for concurrent calls: Run may execute
// from many submitter goroutines at once. On failure fn receives (nil, err).
// A nil fn removes the observer.
func (e *Engine) SetRunObserver(fn func(*RunResult, error)) {
	if fn == nil {
		e.runObs.Store(nil)
		return
	}
	e.runObs.Store(&fn)
}

// Run plans and executes a request, serving it through the result cache when
// one is installed and the request opts in. When the request carries a
// RetryPolicy, transient failures are retried with backoff down the
// degradation ladder; when breakers are enabled, the table's circuit breaker
// may fail the request fast with a *fault.OpenError.
func (e *Engine) Run(req Request) (*RunResult, error) {
	res, err := e.runWithRetry(req)
	if fn := e.runObs.Load(); fn != nil {
		(*fn)(res, err)
	}
	return res, err
}

func (e *Engine) run(req Request) (*RunResult, error) {
	if e.cache != nil && req.UseCache && !strings.HasPrefix(req.Table, "__") {
		return e.runCached(req)
	}
	res, err := e.runDirect(req, nil)
	if err != nil {
		return nil, err
	}
	markOrigins(res.Report, req.Sets, OriginComputed)
	return res, nil
}

// markOrigins attributes sets to origin in the report (lazily allocating the
// map), skipping sets already attributed.
func markOrigins(rep *ExecReport, sets []colset.Set, origin SetOrigin) {
	if rep.Origins == nil {
		rep.Origins = make(map[colset.Set]SetOrigin, len(sets))
	}
	for _, s := range sets {
		if _, done := rep.Origins[s]; !done {
			rep.Origins[s] = origin
		}
	}
}

// runDirect plans and executes a request without consulting the cache.
// promote, when non-nil, observes materialized temps as they are dropped
// (see ExecOptions.PromoteTemp); the cached path uses it to collect
// promotion candidates.
func (e *Engine) runDirect(req Request, promote func(colset.Set, []exec.Agg, *table.Table)) (*RunResult, error) {
	p, st, model, err := e.Plan(req)
	if err != nil {
		return nil, err
	}
	env, err := e.CostEnv(req.Table)
	if err != nil {
		return nil, err
	}
	nAggs := len(req.Aggs)
	if nAggs == 0 {
		nAggs = 1
	}
	report, err := e.exec.ExecutePlanWith(p, req.Aggs, e.sizeFn(env, nAggs), ExecOptions{
		SharedScan:  req.SharedScan,
		PerSetAggs:  req.PerSetAggs,
		Parallel:    req.Parallel,
		Parallelism: req.Parallelism,
		Context:     req.Context,
		MemBudget:   req.MemBudget,
		NoRetain:    req.NoRetain,
		PromoteTemp: promote,
		NDVFn: func(s colset.Set) float64 {
			// Cached-only lookup: the planner's sizeFn has already built
			// statistics for every plan node, so this almost always hits; a
			// miss answers 0 (unknown) rather than profiling mid-execution.
			v, _ := env.CachedNDV(s)
			return v
		},
	})
	if err != nil {
		return nil, err
	}
	res := &RunResult{Plan: p, Report: report, Search: st, ModelUsd: model, Degradations: report.Degradations}
	res.PlanCostSeq = p.Cost(model, nAggs)
	res.PlanCostPar = res.PlanCostSeq
	if dop := exec.ResolveWorkers(req.Parallelism); dop > 1 {
		res.PlanCostPar = p.Cost(cost.Parallel(model, dop), nAggs)
	}
	return res, nil
}

// sizeFn estimates materialized node bytes from statistics for the §4.4
// scheduler and the storage-budget constraint.
func (e *Engine) sizeFn(env *cost.Env, nAggs int) plan.SizeFn {
	return func(s colset.Set) float64 {
		return env.NDV(s) * (env.Width(s) + 8*float64(nAggs))
	}
}
