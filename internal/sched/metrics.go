package sched

import "gbmqo/internal/obs"

// metrics are the scheduler's observable counters, registered on the shared
// obs registry so the server's /metrics endpoint and the CLI's -metrics dump
// see the same series.
type metrics struct {
	submissions   *obs.Counter
	dedup         *obs.Counter
	rejected      *obs.Counter
	conflicts     *obs.Counter
	batches       *obs.Counter
	batchRequests *obs.Counter
	abandoned     *obs.Counter
	errors        *obs.Counter
	costShared    *obs.Counter
	costSolo      *obs.Counter
	closeFull     *obs.Counter
	closeDeadline *obs.Counter
	closeIdle     *obs.Counter
	closeFlush    *obs.Counter
	shed          *obs.Counter
	panics        *obs.Counter
	batchQueries  *obs.Histogram
	occupancy     *obs.Histogram
	queueWait     *obs.Histogram
	execLatency   *obs.Histogram
	queueLen      *obs.Gauge
	openWindows   *obs.Gauge
	p95           *obs.Gauge
	draining      *obs.Gauge
}

func newMetrics(r *obs.Registry) *metrics {
	m := &metrics{
		submissions: r.Counter("gbmqo_sched_submissions_total",
			"Group By requests submitted to the micro-batching scheduler"),
		dedup: r.Counter("gbmqo_sched_dedup_total",
			"submissions answered by an identical query already in the window"),
		rejected: r.Counter("gbmqo_sched_rejected_total",
			"submissions rejected because the queue was full"),
		conflicts: r.Counter("gbmqo_sched_agg_conflicts_total",
			"window groups run solo because their aggregate names conflicted with the merged batch"),
		batches: r.Counter("gbmqo_sched_batches_total",
			"windows dispatched"),
		batchRequests: r.Counter("gbmqo_sched_batched_requests_total",
			"submissions dispatched inside batches, duplicates included"),
		abandoned: r.Counter("gbmqo_sched_abandoned_total",
			"submissions whose context expired before their batch delivered"),
		errors: r.Counter("gbmqo_sched_batch_errors_total",
			"batch executions that returned an error"),
		costShared: r.Counter("gbmqo_sched_plan_cost_shared_total",
			"modeled cost of the shared batch plans executed"),
		costSolo: r.Counter("gbmqo_sched_plan_cost_solo_total",
			"modeled cost of answering the same queries individually from base"),
		closeFull: r.Counter(`gbmqo_sched_window_close_total{reason="full"}`,
			"windows closed, by reason"),
		closeDeadline: r.Counter(`gbmqo_sched_window_close_total{reason="deadline"}`,
			"windows closed, by reason"),
		closeIdle: r.Counter(`gbmqo_sched_window_close_total{reason="idle"}`,
			"windows closed, by reason"),
		closeFlush: r.Counter(`gbmqo_sched_window_close_total{reason="flush"}`,
			"windows closed, by reason"),
		shed: r.Counter("gbmqo_sched_shed_total",
			"submissions rejected by adaptive load shedding (p95 latency over target)"),
		panics: r.Counter("gbmqo_sched_batch_panics_total",
			"batch dispatches aborted by a recovered panic"),
		batchQueries: r.Histogram("gbmqo_sched_batch_queries",
			"distinct queries per dispatched window", obs.SizeBuckets),
		occupancy: r.Histogram("gbmqo_sched_window_occupancy",
			"distinct queries at window close as a fraction of MaxBatch",
			[]float64{0.0625, 0.125, 0.25, 0.5, 0.75, 1}),
		queueWait: r.Histogram("gbmqo_sched_queue_wait_seconds",
			"submission-to-dispatch latency", obs.DurationBuckets),
		execLatency: r.Histogram("gbmqo_sched_batch_exec_seconds",
			"batch dispatch-to-delivery execution time", obs.DurationBuckets),
		queueLen: r.Gauge("gbmqo_sched_queue_len",
			"submissions waiting in open windows"),
		openWindows: r.Gauge("gbmqo_sched_open_windows",
			"currently open windows"),
		p95: r.Gauge("gbmqo_sched_p95_batch_seconds",
			"recent p95 batch execution latency driving the shedding bound"),
		draining: r.Gauge("gbmqo_sched_draining",
			"1 while the batcher is draining for shutdown"),
	}
	// Histogram-derived p95 over the whole run, next to the ring-derived
	// gbmqo_sched_p95_batch_seconds that drives shedding (which sees only the
	// most recent 64 batches).
	r.Func("gbmqo_sched_batch_exec_p95_seconds",
		"p95 batch execution latency estimated from the full latency histogram",
		obs.KindGauge, func() float64 { return m.execLatency.Quantile(0.95) })
	return m
}

func (m *metrics) closeReason(reason string) *obs.Counter {
	switch reason {
	case "full":
		return m.closeFull
	case "deadline":
		return m.closeDeadline
	case "idle":
		return m.closeIdle
	default:
		return m.closeFlush
	}
}
