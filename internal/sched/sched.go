// Package sched is the online micro-batching scheduler that makes the GB-MQO
// optimizer reachable from a concurrent server: individual Group By requests
// arrive independently, are grouped by base table into a short-lived window,
// deduplicated by (grouping set, aggregate signature), and executed as ONE
// multi-query plan through the engine — inheriting its shared scans, result
// cache, governance and parallelism — before each caller's slice of the batch
// is scattered back to it.
//
// Window policy: a window opens on the first arrival for a table and closes
// on whichever comes first — it reaches Config.MaxBatch distinct queries
// ("full"), its Config.MaxWait deadline from open expires ("deadline"), or no
// new request arrives for Config.IdleWait ("idle" — an idle line does not
// make the first caller wait out the whole deadline). Close dispatches the
// batch on its own goroutine; the next arrival opens a fresh window, so a
// slow batch never blocks admission.
//
// Fairness and deadlines: requests carry their own contexts. A request whose
// context expires before its batch completes gets its context error
// immediately — the batch keeps running for the other subscribers, and only
// when every subscriber of a batch has abandoned it is the batch's own
// context cancelled (no orphaned work, no collateral cancellation). Results
// are delivered in arrival (submission sequence) order within a batch.
//
// Identity: batching is transparent. A request's result table is
// cell-for-cell identical to what a solo run of the same query produces —
// grouping-set results keep first-appearance row order through shared
// intermediates (see DESIGN.md "Online micro-batching"), and requests that
// were merged with others' aggregates are projected back to exactly their
// own columns.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gbmqo/internal/colset"
	"gbmqo/internal/engine"
	"gbmqo/internal/exec"
	"gbmqo/internal/obs"
	"gbmqo/internal/table"
)

// RunFunc executes one (possibly multi-query) batch: all sets over one base
// table, with per-set aggregates. The scheduler calls it once per window
// (plus once per aggregate-conflict straggler); the root package wires it to
// engine.Run with the DB's execution options.
type RunFunc func(ctx context.Context, tableName string, sets []colset.Set, perSet map[colset.Set][]exec.Agg) (*engine.RunResult, error)

// Query is one resolved Group By request: grouping ordinals on the base
// table plus its own aggregate list (never empty; COUNT(*) is explicit).
type Query struct {
	Table string
	Set   colset.Set
	Aggs  []exec.Agg
}

// BatchInfo tells a caller how its request was served.
type BatchInfo struct {
	// BatchQueries is the number of distinct queries in the window the
	// request rode (1 = effectively solo).
	BatchQueries int
	// BatchRequests is the total number of submissions in the window,
	// duplicates included.
	BatchRequests int
	// Deduped reports that an identical (set, aggregates) request was already
	// in the window; this request shared its computation.
	Deduped bool
	// QueueWait is the time from submission to batch dispatch.
	QueueWait time.Duration
	// Origin attributes the result (computed, cache hit, cache ancestor,
	// shared flight) — engine.ExecReport.Origins surfaced per request.
	Origin engine.SetOrigin
	// PlanCostShared is the model cost of the batch plan that served this
	// request; PlanCostSolo is the model cost of answering every query in the
	// batch individually from the base relation (the optimizer's naive
	// reference). Their ratio is the modeled benefit of batching.
	PlanCostShared float64
	PlanCostSolo   float64
	// Partial reports that the batch ran sharded with AllowPartial and lost
	// ShardsFailed shards; the result covers only the surviving shards (see
	// engine.ExecReport.Partial).
	Partial      bool
	ShardsFailed int
}

// Config tunes a Batcher. Zero values select the documented defaults.
type Config struct {
	// MaxBatch closes a window once it holds this many distinct queries
	// (default 16).
	MaxBatch int
	// MaxWait closes a window this long after it opened (default 2ms) — the
	// ceiling on queueing latency a request can pay to batching.
	MaxWait time.Duration
	// IdleWait closes a window when no request arrived for this long
	// (default MaxWait/4): an idle line does not make early arrivals wait out
	// the full deadline.
	IdleWait time.Duration
	// MaxQueue bounds submissions waiting in open windows across all tables;
	// beyond it Submit fails fast with ErrQueueFull (default 4096).
	MaxQueue int
	// ShedLatencyTarget enables adaptive load shedding: when the recent p95
	// batch execution latency exceeds this target, the effective queue bound
	// shrinks proportionally (MaxQueue·target/p95, floored at MaxBatch), so a
	// slow backend sheds load early instead of building a queue it can never
	// drain in time. Rejections carry an *OverloadError with a Retry-After
	// hint. 0 disables shedding — only the hard MaxQueue bound applies.
	ShedLatencyTarget time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.IdleWait <= 0 {
		c.IdleWait = c.MaxWait / 4
		if c.IdleWait <= 0 {
			c.IdleWait = c.MaxWait
		}
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4096
	}
	return c
}

// Scheduler errors.
var (
	// ErrClosed: the batcher has been closed.
	ErrClosed = errors.New("sched: batcher closed")
	// ErrQueueFull: Config.MaxQueue submissions are already waiting.
	ErrQueueFull = errors.New("sched: submission queue full")
	// ErrDraining: the batcher is draining for shutdown; in-flight batches
	// complete, new submissions are rejected.
	ErrDraining = errors.New("sched: batcher draining")
	// ErrBatchAborted: the batch executing this submission panicked outside
	// the engine's recovery boundary; the scheduler contained it and every
	// subscriber received this error instead of hanging.
	ErrBatchAborted = errors.New("sched: batch aborted by panic")
)

// OverloadError is the admission rejection Submit returns when the queue is
// full or load shedding is active. It matches ErrQueueFull under errors.Is,
// and carries what a front-end needs to answer 429 with a Retry-After.
type OverloadError struct {
	// QueueLen is the queue depth at rejection; Limit is the bound it hit —
	// Config.MaxQueue, or the shrunken adaptive bound when shedding.
	QueueLen, Limit int
	// P95 is the recent p95 batch execution latency that drove an adaptive
	// rejection (0 when the hard bound was hit before any batch completed).
	P95 time.Duration
	// RetryAfter estimates when admission is likely to succeed: about one
	// batch's worth of drain time.
	RetryAfter time.Duration
}

// Error renders the rejection.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("sched: overloaded (queue %d ≥ limit %d, p95 %v); retry in %v",
		e.QueueLen, e.Limit, e.P95, e.RetryAfter)
}

// Is makes every OverloadError match ErrQueueFull, so existing callers'
// errors.Is(err, ErrQueueFull) checks keep working.
func (e *OverloadError) Is(target error) bool { return target == ErrQueueFull }

// Batcher implements the micro-batching scheduler.
type Batcher struct {
	cfg Config
	run RunFunc
	met *metrics
	reg *obs.Registry // private registry backing met; exposed via Collect

	mu       sync.Mutex
	closed   bool
	draining bool
	windows  map[string]*window
	queued   int
	seq      uint64
	wg       sync.WaitGroup

	// Recent batch execution latencies, for the adaptive shedding bound: a
	// fixed ring under its own mutex, with the derived p95 published through
	// an atomic so enqueue never contends with latency bookkeeping.
	latMu  sync.Mutex
	lat    [64]time.Duration
	latIdx int
	p95ns  atomic.Int64
}

// New creates a Batcher executing batches through run.
func New(run RunFunc, cfg Config) *Batcher {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	return &Batcher{
		cfg:     cfg,
		run:     run,
		met:     newMetrics(reg),
		reg:     reg,
		windows: map[string]*window{},
	}
}

// Name implements obs.Collector.
func (b *Batcher) Name() string { return "sched" }

// Collect implements obs.Collector by forwarding the batcher's private
// metric registry, so whoever owns the scrape endpoint registers the batcher
// once instead of threading a shared registry into the scheduler.
func (b *Batcher) Collect(ch chan<- obs.Metric) error { return b.reg.Collect(ch) }

// group is one distinct (set, aggregate-signature) query within a window and
// its subscribers.
type group struct {
	set  colset.Set
	aggs []exec.Agg
	subs []*pending
}

// window collects concurrent arrivals for one base table.
type window struct {
	table    string
	opened   time.Time
	groups   map[string]*group
	order    []*group // arrival order
	npending int
	deadline *time.Timer
	idle     *time.Timer
}

// pending is one submitted request waiting for its batch.
type pending struct {
	set  colset.Set
	aggs []exec.Agg
	seq  uint64
	enq  time.Time
	dup  bool
	ch   chan outcome // buffered: scatter never blocks

	// abandoned is set when the submitter's context expired; dropped guards
	// the single live-count decrement against the submitter/dispatcher race.
	abandoned atomic.Bool
	dropped   atomic.Bool
	disp      atomic.Pointer[dispatch]
}

type outcome struct {
	t    *table.Table
	info BatchInfo
	err  error
}

// dispatch is one in-flight batch execution: its cancelable context and the
// count of subscribers still listening. When the count reaches zero the
// batch's context is cancelled — work is never orphaned, and one impatient
// caller never cancels the others.
type dispatch struct {
	ctx    context.Context
	cancel context.CancelFunc
	live   atomic.Int64
}

func (d *dispatch) drop() {
	if d.live.Add(-1) == 0 {
		d.cancel()
	}
}

// abandon records that the submitter stopped listening; safe against racing
// with dispatch assignment (whichever side sees both conditions decrements,
// exactly once).
func (p *pending) abandon() {
	p.abandoned.Store(true)
	p.maybeDrop()
}

func (p *pending) maybeDrop() {
	if p.abandoned.Load() && p.disp.Load() != nil && p.dropped.CompareAndSwap(false, true) {
		p.disp.Load().drop()
	}
}

// Submit enqueues one request and blocks until its batch delivers or ctx
// expires. The returned table is cell-for-cell identical to a solo run of
// the same query. A nil ctx means context.Background().
func (b *Batcher) Submit(ctx context.Context, q Query) (*table.Table, BatchInfo, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validate(q); err != nil {
		return nil, BatchInfo{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, BatchInfo{}, err
	}
	p, err := b.enqueue(q)
	if err != nil {
		return nil, BatchInfo{}, err
	}
	select {
	case out := <-p.ch:
		return out.t, out.info, out.err
	case <-ctx.Done():
		p.abandon()
		b.met.abandoned.Inc()
		// The result may have raced in between the two cases; prefer it so a
		// deadline that fires at delivery time still returns the answer.
		select {
		case out := <-p.ch:
			return out.t, out.info, out.err
		default:
			return nil, BatchInfo{}, ctx.Err()
		}
	}
}

func validate(q Query) error {
	if q.Table == "" {
		return errors.New("sched: empty table name")
	}
	if q.Set.IsEmpty() {
		return errors.New("sched: empty grouping set")
	}
	if len(q.Aggs) == 0 {
		return errors.New("sched: empty aggregate list")
	}
	seen := map[string]bool{}
	for _, a := range q.Aggs {
		if a.Name == "" {
			return errors.New("sched: aggregate with empty output name")
		}
		if seen[a.Name] {
			return fmt.Errorf("sched: duplicate aggregate output name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// enqueue files the request into its table's open window (opening one if
// needed), deduplicating identical queries, and closes the window early when
// it fills.
func (b *Batcher) enqueue(q Query) (*pending, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if b.draining {
		return nil, ErrDraining
	}
	limit, p95 := b.admitLimit()
	if b.queued >= limit {
		b.met.rejected.Inc()
		if limit < b.cfg.MaxQueue {
			b.met.shed.Inc()
		}
		retry := p95
		if retry < b.cfg.MaxWait {
			retry = b.cfg.MaxWait
		}
		return nil, &OverloadError{QueueLen: b.queued, Limit: limit, P95: p95, RetryAfter: retry}
	}
	b.seq++
	p := &pending{
		set:  q.Set,
		aggs: q.Aggs,
		seq:  b.seq,
		enq:  time.Now(),
		ch:   make(chan outcome, 1),
	}
	w := b.windows[q.Table]
	if w == nil {
		w = &window{table: q.Table, opened: p.enq, groups: map[string]*group{}}
		tbl := q.Table
		w.deadline = time.AfterFunc(b.cfg.MaxWait, func() { b.closeTable(tbl, w, "deadline") })
		w.idle = time.AfterFunc(b.cfg.IdleWait, func() { b.closeTable(tbl, w, "idle") })
		b.windows[q.Table] = w
		b.met.openWindows.Add(1)
	} else {
		w.idle.Reset(b.cfg.IdleWait)
	}
	key := groupKey(q.Set, q.Aggs)
	g := w.groups[key]
	if g == nil {
		g = &group{set: q.Set, aggs: q.Aggs}
		w.groups[key] = g
		w.order = append(w.order, g)
	} else {
		p.dup = true
		b.met.dedup.Inc()
	}
	g.subs = append(g.subs, p)
	w.npending++
	b.queued++
	b.met.submissions.Inc()
	b.met.queueLen.Set(float64(b.queued))
	if len(w.groups) >= b.cfg.MaxBatch {
		b.closeLocked(w, "full")
	}
	return p, nil
}

// groupKey is the window-local dedup key: grouping set plus an order-
// sensitive aggregate signature (kind, source, output name — COUNT(*)
// normalizes its source away, mirroring the result cache's keying).
func groupKey(set colset.Set, aggs []exec.Agg) string {
	sig := make([]byte, 0, 16+len(aggs)*12)
	sig = append(sig, set.String()...)
	for _, a := range aggs {
		col := a.Col
		if a.Kind == exec.AggCountStar {
			col = -1
		}
		sig = append(sig, fmt.Sprintf("|%d:%d:%s", a.Kind, col, a.Name)...)
	}
	return string(sig)
}

// admitLimit computes the effective queue bound: MaxQueue, shrunk
// proportionally when shedding is enabled and the recent p95 batch latency
// exceeds the target, floored at MaxBatch so one window's worth always fits.
// Callers hold b.mu.
func (b *Batcher) admitLimit() (int, time.Duration) {
	p95 := time.Duration(b.p95ns.Load())
	limit := b.cfg.MaxQueue
	if target := b.cfg.ShedLatencyTarget; target > 0 && p95 > target {
		limit = int(int64(b.cfg.MaxQueue) * int64(target) / int64(p95))
		if limit < b.cfg.MaxBatch {
			limit = b.cfg.MaxBatch
		}
	}
	return limit, p95
}

// observeLatency folds one batch's execution time into the shedding window
// and republishes the p95.
func (b *Batcher) observeLatency(d time.Duration) {
	b.met.execLatency.Observe(d.Seconds())
	b.latMu.Lock()
	b.lat[b.latIdx%len(b.lat)] = d
	b.latIdx++
	n := b.latIdx
	if n > len(b.lat) {
		n = len(b.lat)
	}
	tmp := make([]time.Duration, n)
	copy(tmp, b.lat[:n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	p95 := tmp[min(n*95/100, n-1)]
	b.latMu.Unlock()
	b.p95ns.Store(int64(p95))
	b.met.p95.Set(p95.Seconds())
}

// closeTable closes w if it is still the open window for tbl (timer paths).
func (b *Batcher) closeTable(tbl string, w *window, reason string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.windows[tbl] != w {
		return // already closed by "full" or a racing timer
	}
	b.closeLocked(w, reason)
}

// closeLocked detaches the window and dispatches it. Callers hold b.mu.
func (b *Batcher) closeLocked(w *window, reason string) {
	delete(b.windows, w.table)
	w.deadline.Stop()
	w.idle.Stop()
	b.queued -= w.npending
	b.met.queueLen.Set(float64(b.queued))
	b.met.openWindows.Add(-1)
	b.met.closeReason(reason).Inc()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.dispatch(w)
	}()
}

// FlushTable closes tbl's open window immediately, if any. The append path
// uses it to fence batching against an epoch bump: queries batched before an
// append dispatch against the pre-append snapshot instead of straddling it.
func (b *Batcher) FlushTable(tbl string) {
	b.mu.Lock()
	if w, ok := b.windows[tbl]; ok {
		b.closeLocked(w, "flush")
	}
	b.mu.Unlock()
}

// Flush closes every open window immediately (shutdown and tests).
func (b *Batcher) Flush() {
	b.mu.Lock()
	for _, w := range b.windows {
		b.closeLocked(w, "flush")
	}
	b.mu.Unlock()
}

// Close flushes open windows, waits for in-flight batches, and rejects
// further submissions.
func (b *Batcher) Close() {
	b.mu.Lock()
	b.closed = true
	for _, w := range b.windows {
		b.closeLocked(w, "flush")
	}
	b.mu.Unlock()
	b.wg.Wait()
}

// Drain is graceful shutdown under a deadline: stop admissions (submissions
// get ErrDraining), flush every open window, and wait for in-flight batches
// until ctx expires. Returns nil when everything drained, or ctx's error when
// the deadline cut the wait short — in-flight batches then finish in the
// background and deliver to any subscriber still listening. After Drain the
// batcher is closed either way. A nil ctx waits without a deadline.
func (b *Batcher) Drain(ctx context.Context) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.draining = true
	b.met.draining.Set(1)
	for _, w := range b.windows {
		b.closeLocked(w, "flush")
	}
	b.mu.Unlock()

	done := make(chan struct{})
	go func() {
		b.wg.Wait()
		close(done)
	}()
	var err error
	if ctx == nil {
		<-done
	} else {
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	return err
}

// Draining reports whether Drain has begun (the /healthz "draining" state).
func (b *Batcher) Draining() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.draining
}

// Stats is a point-in-time snapshot of scheduler activity (tests and the
// CLI; the full series live in the obs registry).
type Stats struct {
	Submitted   int64
	Deduped     int64
	Batches     int64
	Rejected    int64
	Shed        int64
	Panics      int64
	Conflicts   int64
	Abandoned   int64
	QueueLen    int
	OpenWindows int
	Draining    bool
}

// Stats snapshots the scheduler counters.
func (b *Batcher) Stats() Stats {
	b.mu.Lock()
	queued, open, draining := b.queued, len(b.windows), b.draining
	b.mu.Unlock()
	return Stats{
		Submitted:   int64(b.met.submissions.Value()),
		Deduped:     int64(b.met.dedup.Value()),
		Batches:     int64(b.met.batches.Value()),
		Rejected:    int64(b.met.rejected.Value()),
		Shed:        int64(b.met.shed.Value()),
		Panics:      int64(b.met.panics.Value()),
		Conflicts:   int64(b.met.conflicts.Value()),
		Abandoned:   int64(b.met.abandoned.Value()),
		QueueLen:    queued,
		OpenWindows: open,
		Draining:    draining,
	}
}

// dispatch executes one closed window: merge per-set aggregate lists, run the
// union batch once, then scatter per-request results in arrival order.
// Requests whose aggregates conflict by output name with the merged list run
// as individual follow-ups (correctness over sharing for pathological names).
func (b *Batcher) dispatch(w *window) {
	now := time.Now()
	b.met.batches.Inc()
	b.met.batchQueries.Observe(float64(len(w.order)))
	b.met.batchRequests.Add(float64(w.npending))
	b.met.occupancy.Observe(float64(len(w.order)) / float64(b.cfg.MaxBatch))

	d := &dispatch{}
	d.ctx, d.cancel = context.WithCancel(context.Background())
	var all []*pending
	for _, g := range w.order {
		all = append(all, g.subs...)
	}
	d.live.Store(int64(len(all)))
	for _, p := range all {
		b.met.queueWait.Observe(now.Sub(p.enq).Seconds())
		p.disp.Store(d)
		p.maybeDrop() // the submitter may have abandoned before dispatch
	}
	// Containment boundary: a panic anywhere below — merge, run, scatter —
	// must never leak a subscriber. Every non-abandoned pending gets
	// ErrBatchAborted; the send is non-blocking because a pending that was
	// already served before the panic has a value in (or consumed from) its
	// buffered channel and must not block this defer forever.
	defer func() {
		pnc := recover()
		b.observeLatency(time.Since(now))
		d.cancel()
		if pnc == nil {
			return
		}
		b.met.panics.Inc()
		b.met.errors.Inc()
		err := fmt.Errorf("%w: %v", ErrBatchAborted, pnc)
		for _, p := range all {
			if p.abandoned.Load() {
				continue
			}
			select {
			case p.ch <- outcome{err: err, info: BatchInfo{BatchQueries: len(w.order), BatchRequests: w.npending}}:
			default:
			}
		}
	}()
	exec.Testing.Fire("sched.window.close")

	shared, solos := mergeAggs(w.order)
	b.met.conflicts.Add(float64(len(solos)))

	// Main batch: one engine run over the union of distinct sets.
	if len(shared.sets) > 0 {
		res, err := b.run(d.ctx, w.table, shared.sets, shared.perSet)
		if err != nil {
			b.met.errors.Inc()
		}
		b.scatter(w, shared.groups, res, err, shared.perSet)
	}
	// Stragglers: aggregate-name conflicts run individually, still through
	// the same engine (cache and governance apply).
	for _, g := range solos {
		perSet := map[colset.Set][]exec.Agg{g.set: g.aggs}
		res, err := b.run(d.ctx, w.table, []colset.Set{g.set}, perSet)
		if err != nil {
			b.met.errors.Inc()
		}
		b.scatter(w, []*group{g}, res, err, perSet)
	}
}

// merged is the main batch: distinct sets in arrival order, each with the
// union of its subscribers' aggregates.
type merged struct {
	sets   []colset.Set
	perSet map[colset.Set][]exec.Agg
	groups []*group
}

// mergeAggs unions aggregate lists per grouping set. Two groups share a set
// when their aggregate lists are name-compatible (same output name ⇒ same
// aggregate); a group whose names collide with the union built so far is
// deferred to a solo run.
func mergeAggs(order []*group) (merged, []*group) {
	m := merged{perSet: map[colset.Set][]exec.Agg{}}
	var solos []*group
	byName := map[colset.Set]map[string]exec.Agg{}
	for _, g := range order {
		names := byName[g.set]
		if names == nil {
			// First group for this set joins the batch as-is.
			names = make(map[string]exec.Agg, len(g.aggs))
			for _, a := range g.aggs {
				names[a.Name] = a
			}
			byName[g.set] = names
			m.sets = append(m.sets, g.set)
			m.perSet[g.set] = append([]exec.Agg(nil), g.aggs...)
			m.groups = append(m.groups, g)
			continue
		}
		compatible := true
		for _, a := range g.aggs {
			if have, ok := names[a.Name]; ok && have != a {
				compatible = false
				break
			}
		}
		if !compatible {
			solos = append(solos, g)
			continue
		}
		for _, a := range g.aggs {
			if _, ok := names[a.Name]; !ok {
				names[a.Name] = a
				m.perSet[g.set] = append(m.perSet[g.set], a)
			}
		}
		m.groups = append(m.groups, g)
	}
	return m, solos
}

// scatter delivers one run's outcome to the given groups' subscribers in
// arrival order, projecting each request back to exactly its own columns
// when its set carried merged aggregates.
func (b *Batcher) scatter(w *window, groups []*group, res *engine.RunResult, err error, perSet map[colset.Set][]exec.Agg) {
	info := BatchInfo{
		BatchQueries:  len(w.order),
		BatchRequests: w.npending,
	}
	if res != nil {
		info.PlanCostShared = res.PlanCostSeq
		info.PlanCostSolo = res.Search.NaiveCost
		if info.PlanCostSolo == 0 {
			info.PlanCostSolo = res.PlanCostSeq
		}
		if res.Report != nil {
			info.Partial = res.Report.Partial
			info.ShardsFailed = len(res.Report.ShardsFailed)
		}
		b.met.costShared.Add(res.PlanCostSeq)
		b.met.costSolo.Add(info.PlanCostSolo)
	}
	var subs []*pending
	for _, g := range groups {
		subs = append(subs, g.subs...)
	}
	// Arrival order within the batch: fair delivery, first-come first-served.
	for i := 1; i < len(subs); i++ {
		for j := i; j > 0 && subs[j].seq < subs[j-1].seq; j-- {
			subs[j], subs[j-1] = subs[j-1], subs[j]
		}
	}
	for _, p := range subs {
		if p.abandoned.Load() {
			continue
		}
		pi := info
		pi.Deduped = p.dup
		pi.QueueWait = time.Since(p.enq)
		if err != nil {
			p.ch <- outcome{err: err, info: pi}
			continue
		}
		t := res.Report.Results[p.set]
		if t == nil {
			p.ch <- outcome{err: fmt.Errorf("sched: batch produced no result for %s", p.set), info: pi}
			continue
		}
		pi.Origin = res.Report.Origins[p.set]
		out, perr := projectOwn(t, p.set, p.aggs, perSet[p.set])
		if perr != nil {
			p.ch <- outcome{err: perr, info: pi}
			continue
		}
		p.ch <- outcome{t: out, info: pi}
	}
}

// projectOwn narrows a set's batch result (carrying the merged aggregate
// union) to one request's own aggregates, preserving row order. When the
// request's list IS the merged list the table passes through untouched, so
// the common case adds nothing.
func projectOwn(t *table.Table, set colset.Set, own, mergedAggs []exec.Agg) (*table.Table, error) {
	if len(own) == len(mergedAggs) {
		same := true
		for i := range own {
			if own[i] != mergedAggs[i] {
				same = false
				break
			}
		}
		if same {
			return t, nil
		}
	}
	ords := make([]int, 0, set.Len()+len(own))
	for i := 0; i < set.Len(); i++ {
		ords = append(ords, i) // grouping columns lead the result schema
	}
	for _, a := range own {
		ord := t.ColIndex(a.Name)
		if ord < 0 {
			return nil, fmt.Errorf("sched: batch result lacks aggregate %q", a.Name)
		}
		ords = append(ords, ord)
	}
	return t.Project(t.Name(), ords), nil
}
