package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gbmqo/internal/colset"
	"gbmqo/internal/core"
	"gbmqo/internal/engine"
	"gbmqo/internal/exec"
	"gbmqo/internal/table"
)

// fakeResult builds a deterministic result for each requested set: one row,
// grouping columns named c<ord> holding the ordinal, aggregate columns
// holding 1.
func fakeResult(sets []colset.Set, perSet map[colset.Set][]exec.Agg) *engine.RunResult {
	rep := &engine.ExecReport{
		Results: map[colset.Set]*table.Table{},
		Origins: map[colset.Set]engine.SetOrigin{},
	}
	for _, s := range sets {
		var defs []table.ColumnDef
		var row []table.Value
		s.ForEach(func(c int) {
			defs = append(defs, table.ColumnDef{Name: fmt.Sprintf("c%d", c), Typ: table.TInt64})
			row = append(row, table.Int(int64(c)))
		})
		for _, a := range perSet[s] {
			defs = append(defs, table.ColumnDef{Name: a.Name, Typ: table.TInt64})
			row = append(row, table.Int(1))
		}
		t := table.New("res", defs)
		t.AppendRow(row...)
		rep.Results[s] = t
		rep.Origins[s] = engine.OriginComputed
	}
	return &engine.RunResult{
		Report:      rep,
		Search:      core.SearchStats{NaiveCost: 100},
		PlanCostSeq: 40,
	}
}

// countingRunner counts calls and optionally blocks until released or the
// batch context dies.
type countingRunner struct {
	calls atomic.Int32
	block chan struct{} // nil = don't block
	ctxCh chan context.Context
}

func (r *countingRunner) run(ctx context.Context, tbl string, sets []colset.Set, perSet map[colset.Set][]exec.Agg) (*engine.RunResult, error) {
	r.calls.Add(1)
	if r.ctxCh != nil {
		r.ctxCh <- ctx
	}
	if r.block != nil {
		select {
		case <-r.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return fakeResult(sets, perSet), nil
}

func cnt() []exec.Agg { return []exec.Agg{exec.CountStar()} }

func TestWindowClosesWhenFull(t *testing.T) {
	r := &countingRunner{}
	b := New(r.run, Config{MaxBatch: 2, MaxWait: time.Hour, IdleWait: time.Hour})
	defer b.Close()
	var wg sync.WaitGroup
	infos := make([]BatchInfo, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, info, err := b.Submit(nil, Query{Table: "t", Set: colset.Of(i), Aggs: cnt()})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if out.NumRows() != 1 {
				t.Errorf("submit %d: %d rows", i, out.NumRows())
			}
			infos[i] = info
		}(i)
	}
	wg.Wait()
	if got := r.calls.Load(); got != 1 {
		t.Fatalf("runner called %d times, want 1 (batched)", got)
	}
	for i, info := range infos {
		if info.BatchQueries != 2 {
			t.Fatalf("info %d: BatchQueries = %d, want 2", i, info.BatchQueries)
		}
	}
	st := b.Stats()
	if st.Batches != 1 || st.Submitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDedupIdenticalQueries(t *testing.T) {
	r := &countingRunner{}
	b := New(r.run, Config{MaxBatch: 64, MaxWait: 20 * time.Millisecond, IdleWait: 10 * time.Millisecond})
	defer b.Close()
	q := Query{Table: "t", Set: colset.Of(3), Aggs: cnt()}
	var wg sync.WaitGroup
	outs := make([]*table.Table, 2)
	deduped := 0
	var mu sync.Mutex
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, info, err := b.Submit(nil, q)
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			mu.Lock()
			outs[i] = out
			if info.Deduped {
				deduped++
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if got := r.calls.Load(); got != 1 {
		t.Fatalf("runner called %d times, want 1", got)
	}
	if outs[0] != outs[1] {
		t.Fatal("identical queries did not share one result table")
	}
	if deduped != 1 {
		t.Fatalf("deduped = %d, want exactly 1 (the second arrival)", deduped)
	}
	if st := b.Stats(); st.Deduped != 1 {
		t.Fatalf("stats.Deduped = %d", st.Deduped)
	}
}

func TestIdleFlushBeatsDeadline(t *testing.T) {
	r := &countingRunner{}
	b := New(r.run, Config{MaxBatch: 64, MaxWait: 5 * time.Second, IdleWait: 10 * time.Millisecond})
	defer b.Close()
	start := time.Now()
	_, _, err := b.Submit(nil, Query{Table: "t", Set: colset.Of(0), Aggs: cnt()})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("idle flush took %v; the 5s deadline must not gate a lone request", elapsed)
	}
}

func TestDeadlineFlush(t *testing.T) {
	r := &countingRunner{}
	// IdleWait == MaxWait: only the deadline can fire.
	b := New(r.run, Config{MaxBatch: 64, MaxWait: 15 * time.Millisecond, IdleWait: 15 * time.Millisecond})
	defer b.Close()
	if _, _, err := b.Submit(nil, Query{Table: "t", Set: colset.Of(0), Aggs: cnt()}); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Batches != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPerRequestCancellationLeavesBatchRunning(t *testing.T) {
	r := &countingRunner{block: make(chan struct{})}
	b := New(r.run, Config{MaxBatch: 2, MaxWait: time.Hour, IdleWait: time.Hour})
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errA := make(chan error, 1)
	okB := make(chan error, 1)
	go func() {
		_, _, err := b.Submit(ctx, Query{Table: "t", Set: colset.Of(0), Aggs: cnt()})
		errA <- err
	}()
	time.Sleep(5 * time.Millisecond)
	go func() {
		out, _, err := b.Submit(nil, Query{Table: "t", Set: colset.Of(1), Aggs: cnt()})
		if err == nil && out.NumRows() != 1 {
			err = errors.New("bad result")
		}
		okB <- err
	}()
	// Window is full → dispatched; the runner is blocked. Cancel A only.
	cancel()
	if err := <-errA; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submitter got %v, want context.Canceled", err)
	}
	// B must still complete once the runner unblocks.
	close(r.block)
	if err := <-okB; err != nil {
		t.Fatalf("surviving submitter: %v", err)
	}
	if st := b.Stats(); st.Abandoned != 1 {
		t.Fatalf("stats.Abandoned = %d", st.Abandoned)
	}
}

func TestAllAbandonedCancelsBatch(t *testing.T) {
	r := &countingRunner{block: make(chan struct{}), ctxCh: make(chan context.Context, 1)}
	b := New(r.run, Config{MaxBatch: 1, MaxWait: time.Hour, IdleWait: time.Hour})
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errA := make(chan error, 1)
	go func() {
		_, _, err := b.Submit(ctx, Query{Table: "t", Set: colset.Of(0), Aggs: cnt()})
		errA <- err
	}()
	bctx := <-r.ctxCh // batch dispatched, runner blocked
	cancel()
	if err := <-errA; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
	select {
	case <-bctx.Done():
		// Batch context cancelled once its only subscriber left: no orphans.
	case <-time.After(2 * time.Second):
		t.Fatal("batch context not cancelled after all subscribers abandoned")
	}
}

func TestQueueBackpressure(t *testing.T) {
	r := &countingRunner{}
	b := New(r.run, Config{MaxBatch: 64, MaxWait: time.Hour, IdleWait: time.Hour, MaxQueue: 1})
	defer b.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		b.Submit(nil, Query{Table: "t", Set: colset.Of(0), Aggs: cnt()})
	}()
	// Wait until the first submission is queued.
	for i := 0; i < 200; i++ {
		if b.Stats().QueueLen == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	_, _, err := b.Submit(nil, Query{Table: "t", Set: colset.Of(1), Aggs: cnt()})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	b.Flush()
	<-done
}

func TestAggregateMergeAndProjection(t *testing.T) {
	var sawAggs atomic.Int32
	run := func(ctx context.Context, tbl string, sets []colset.Set, perSet map[colset.Set][]exec.Agg) (*engine.RunResult, error) {
		if len(sets) == 1 {
			sawAggs.Store(int32(len(perSet[sets[0]])))
		}
		return fakeResult(sets, perSet), nil
	}
	b := New(run, Config{MaxBatch: 2, MaxWait: time.Hour, IdleWait: time.Hour})
	defer b.Close()
	set := colset.Of(2)
	qa := Query{Table: "t", Set: set, Aggs: []exec.Agg{exec.CountStar()}}
	qb := Query{Table: "t", Set: set, Aggs: []exec.Agg{{Kind: exec.AggSum, Col: 5, Name: "sum_x"}}}
	var wg sync.WaitGroup
	var ta, tb *table.Table
	wg.Add(2)
	go func() { defer wg.Done(); ta, _, _ = b.Submit(nil, qa) }()
	time.Sleep(5 * time.Millisecond) // qa first: deterministic merge order
	go func() { defer wg.Done(); tb, _, _ = b.Submit(nil, qb) }()
	wg.Wait()
	// Same set + compatible names = one group per aggsig but a single merged
	// run carrying both aggregates; MaxBatch counts distinct (set, aggs)
	// groups, so the window closed as full with two groups.
	if got := sawAggs.Load(); got != 2 {
		t.Fatalf("merged run saw %d aggs, want 2 (union)", got)
	}
	if ta == nil || tb == nil {
		t.Fatal("missing results")
	}
	if ta.NumCols() != 2 || ta.ColIndex("cnt") < 0 || ta.ColIndex("sum_x") >= 0 {
		t.Fatalf("qa columns = %v, want [c2 cnt]", ta.ColNames())
	}
	if tb.NumCols() != 2 || tb.ColIndex("sum_x") < 0 || tb.ColIndex("cnt") >= 0 {
		t.Fatalf("qb columns = %v, want [c2 sum_x]", tb.ColNames())
	}
}

func TestAggregateNameConflictRunsSolo(t *testing.T) {
	r := &countingRunner{}
	b := New(r.run, Config{MaxBatch: 2, MaxWait: time.Hour, IdleWait: time.Hour})
	defer b.Close()
	set := colset.Of(1)
	// Same output name "v", different aggregate: cannot share one result
	// schema — the second group must run on its own.
	qa := Query{Table: "t", Set: set, Aggs: []exec.Agg{{Kind: exec.AggMin, Col: 3, Name: "v"}}}
	qb := Query{Table: "t", Set: set, Aggs: []exec.Agg{{Kind: exec.AggMax, Col: 3, Name: "v"}}}
	var wg sync.WaitGroup
	wg.Add(2)
	var errs [2]error
	go func() { defer wg.Done(); _, _, errs[0] = b.Submit(nil, qa) }()
	time.Sleep(5 * time.Millisecond)
	go func() { defer wg.Done(); _, _, errs[1] = b.Submit(nil, qb) }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if got := r.calls.Load(); got != 2 {
		t.Fatalf("runner called %d times, want 2 (main batch + conflict solo)", got)
	}
	if st := b.Stats(); st.Conflicts != 1 {
		t.Fatalf("stats.Conflicts = %d", st.Conflicts)
	}
}

func TestRunnerErrorFansOut(t *testing.T) {
	boom := errors.New("boom")
	run := func(context.Context, string, []colset.Set, map[colset.Set][]exec.Agg) (*engine.RunResult, error) {
		return nil, boom
	}
	b := New(run, Config{MaxBatch: 2, MaxWait: time.Hour, IdleWait: time.Hour})
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := b.Submit(nil, Query{Table: "t", Set: colset.Of(i), Aggs: cnt()})
			if !errors.Is(err, boom) {
				t.Errorf("submit %d: %v, want boom", i, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestSeparateTablesSeparateWindows(t *testing.T) {
	r := &countingRunner{}
	b := New(r.run, Config{MaxBatch: 1, MaxWait: time.Hour, IdleWait: time.Hour})
	defer b.Close()
	for i, tbl := range []string{"a", "b"} {
		if _, _, err := b.Submit(nil, Query{Table: tbl, Set: colset.Of(i), Aggs: cnt()}); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.calls.Load(); got != 2 {
		t.Fatalf("runner called %d times, want 2 (one per table)", got)
	}
}

func TestCloseRejectsSubmissions(t *testing.T) {
	b := New((&countingRunner{}).run, Config{})
	b.Close()
	_, _, err := b.Submit(nil, Query{Table: "t", Set: colset.Of(0), Aggs: cnt()})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	b := New((&countingRunner{}).run, Config{})
	defer b.Close()
	cases := []Query{
		{Table: "", Set: colset.Of(0), Aggs: cnt()},
		{Table: "t", Aggs: cnt()},
		{Table: "t", Set: colset.Of(0)},
		{Table: "t", Set: colset.Of(0), Aggs: []exec.Agg{exec.CountStar(), exec.CountStar()}},
	}
	for i, q := range cases {
		if _, _, err := b.Submit(nil, q); err == nil {
			t.Errorf("case %d accepted: %+v", i, q)
		}
	}
}

// TestSchedDispatchPanicContainment injects a panic at the sched.window.close
// fault site and checks the dispatch boundary contains it: every subscriber
// receives ErrBatchAborted (nobody hangs), the panic is counted, and the
// batcher keeps serving afterwards.
func TestSchedDispatchPanicContainment(t *testing.T) {
	r := &countingRunner{}
	b := New(r.run, Config{MaxBatch: 2, MaxWait: time.Hour, IdleWait: time.Hour})
	defer b.Close()
	exec.Testing.SetFailPoint(func(site string) {
		if site == "sched.window.close" {
			panic("dispatch bomb")
		}
	})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = b.Submit(nil, Query{Table: "t", Set: colset.Of(i), Aggs: cnt()})
		}(i)
	}
	wg.Wait()
	exec.Testing.ClearFailPoint()
	for i, err := range errs {
		if !errors.Is(err, ErrBatchAborted) {
			t.Fatalf("submitter %d: err = %v, want ErrBatchAborted", i, err)
		}
	}
	if st := b.Stats(); st.Panics != 1 {
		t.Fatalf("stats = %+v, want 1 panic", st)
	}
	if r.calls.Load() != 0 {
		t.Fatalf("runner ran despite pre-run panic")
	}
	// The batcher survives: the next window runs normally.
	var out *table.Table
	var err error
	var after sync.WaitGroup
	for i := 0; i < 2; i++ {
		after.Add(1)
		go func(i int) {
			defer after.Done()
			o, _, e := b.Submit(nil, Query{Table: "t", Set: colset.Of(i), Aggs: cnt()})
			if i == 0 {
				out, err = o, e
			}
		}(i)
	}
	after.Wait()
	if err != nil || out == nil {
		t.Fatalf("submit after contained panic: %v", err)
	}
}

// TestSchedDrainFlushesAndRejects checks graceful drain: pending submissions
// in open windows are flushed and answered, concurrent and later submissions
// get ErrDraining, and Drain returns nil once everything delivered.
func TestSchedDrainFlushesAndRejects(t *testing.T) {
	r := &countingRunner{}
	b := New(r.run, Config{MaxBatch: 64, MaxWait: time.Hour, IdleWait: time.Hour})
	resc := make(chan error, 1)
	go func() {
		_, _, err := b.Submit(nil, Query{Table: "t", Set: colset.Of(1), Aggs: cnt()})
		resc <- err
	}()
	// Wait for the submission to sit in an open window.
	for i := 0; ; i++ {
		if st := b.Stats(); st.QueueLen == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("submission never queued")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := <-resc; err != nil {
		t.Fatalf("in-flight submission during drain: %v", err)
	}
	if _, _, err := b.Submit(nil, Query{Table: "t", Set: colset.Of(2), Aggs: cnt()}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after drain: %v, want ErrClosed", err)
	}
}

// TestSchedDrainRejectsWhileDraining checks a submission arriving mid-drain
// (batches still in flight) gets ErrDraining, and a deadline that expires
// before the drain completes surfaces the context error.
func TestSchedDrainRejectsWhileDraining(t *testing.T) {
	r := &countingRunner{block: make(chan struct{})}
	b := New(r.run, Config{MaxBatch: 1, MaxWait: time.Hour, IdleWait: time.Hour})
	resc := make(chan error, 1)
	go func() {
		_, _, err := b.Submit(nil, Query{Table: "t", Set: colset.Of(1), Aggs: cnt()})
		resc <- err
	}()
	// MaxBatch=1 dispatches immediately; wait for the runner to be inside run.
	for i := 0; r.calls.Load() == 0; i++ {
		if i > 1000 {
			t.Fatal("batch never dispatched")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := b.Drain(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with stuck batch = %v, want DeadlineExceeded", err)
	}
	if !b.Draining() {
		t.Fatal("Draining() = false during drain")
	}
	if _, _, err := b.Submit(nil, Query{Table: "t", Set: colset.Of(2), Aggs: cnt()}); !errors.Is(err, ErrClosed) && !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: %v, want ErrDraining/ErrClosed", err)
	}
	// Release the stuck batch; the original submitter still gets its answer.
	close(r.block)
	if err := <-resc; err != nil {
		t.Fatalf("submitter after late drain: %v", err)
	}
}

// TestSchedAdaptiveShedBound checks the p95-driven admission bound: with the
// recent p95 over the target, the effective limit shrinks below MaxQueue and
// rejections carry an *OverloadError with a Retry-After hint while still
// matching ErrQueueFull.
func TestSchedAdaptiveShedBound(t *testing.T) {
	r := &countingRunner{}
	b := New(r.run, Config{
		MaxBatch:          4,
		MaxWait:           time.Hour,
		IdleWait:          time.Hour,
		MaxQueue:          100,
		ShedLatencyTarget: time.Millisecond,
	})
	defer b.Close()
	// Publish a recent p95 of 20ms: limit = 100·1ms/20ms = 5.
	b.p95ns.Store(int64(20 * time.Millisecond))

	// MaxBatch=4 would close the window at 4 distinct queries, so spread 5
	// queued submissions over two tables to keep both windows open.
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		tbl := "t"
		if i >= 3 {
			tbl = "u"
		}
		go func(i int, tbl string) {
			defer wg.Done()
			b.Submit(nil, Query{Table: tbl, Set: colset.Of(i % 3), Aggs: cnt()})
		}(i, tbl)
	}
	for i := 0; ; i++ {
		if st := b.Stats(); st.QueueLen == 5 {
			break
		}
		if i > 1000 {
			t.Fatalf("queue never reached 5: %+v", b.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	_, _, err := b.Submit(nil, Query{Table: "v", Set: colset.Of(9), Aggs: cnt()})
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *OverloadError", err)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatal("OverloadError must match ErrQueueFull")
	}
	if oe.Limit != 5 || oe.QueueLen != 5 {
		t.Fatalf("OverloadError = %+v, want limit 5 at queue 5", oe)
	}
	if oe.RetryAfter < 20*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want ≥ recent p95", oe.RetryAfter)
	}
	if st := b.Stats(); st.Shed != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want 1 shed rejection", st)
	}
	b.Flush()
	wg.Wait()
}

// TestSchedLatencyFeedsShedding checks dispatch feeds the latency window: a
// slow batch raises the published p95.
func TestSchedLatencyFeedsShedding(t *testing.T) {
	r := &countingRunner{block: make(chan struct{})}
	b := New(r.run, Config{MaxBatch: 1, MaxWait: time.Hour, IdleWait: time.Hour, ShedLatencyTarget: time.Millisecond})
	defer b.Close()
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(r.block)
	}()
	if _, _, err := b.Submit(nil, Query{Table: "t", Set: colset.Of(1), Aggs: cnt()}); err != nil {
		t.Fatal(err)
	}
	if p95 := time.Duration(b.p95ns.Load()); p95 < 20*time.Millisecond {
		t.Fatalf("published p95 = %v after a ~30ms batch", p95)
	}
}
