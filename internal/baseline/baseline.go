// Package baseline implements the two comparison strategies of the paper's
// evaluation: the naïve plan (every required Group By computed directly from
// the base relation) and an emulation of the GROUPING SETS strategy the paper
// observed in a commercial DBMS (§1, §6.1).
package baseline

import (
	"gbmqo/internal/colset"
	"gbmqo/internal/plan"
)

// Naive returns the plan that computes every required query from R — the
// §6.2 comparison baseline.
func Naive(baseName string, colNames []string, required []colset.Set) *plan.Plan {
	return plan.Naive(baseName, colNames, required)
}

// GroupingSets emulates the commercial GROUPING SETS plan the paper reports:
//
//   - containment chains are exploited via shared sorts — "it arranges the
//     sorting order so that if a grouping set subsumes another, the subsumed
//     grouping is almost free": each required set is computed from its
//     smallest required proper superset when one exists;
//   - everything else hangs off the union of all requested column sets,
//     materialized once — "the plan picked by the query optimizer is to first
//     compute the Group By of all 12 columns, materialize that result, and
//     then compute each of the 12 Group By queries from that materialized
//     result" (§1). For non-overlapping workloads that union is nearly as
//     large as R itself, which is precisely why GROUPING SETS performs like
//     the naïve plan on the SC scenario.
func GroupingSets(baseName string, colNames []string, required []colset.Set) *plan.Plan {
	nodes := make(map[colset.Set]*plan.Node, len(required))
	for _, s := range required {
		nodes[s] = plan.NewNode(s, true)
	}

	// Attach each set to its smallest required proper superset.
	var topLevel []colset.Set
	for _, s := range required {
		parent := smallestSuperset(s, required)
		if parent == nil {
			topLevel = append(topLevel, s)
			continue
		}
		nodes[*parent].Children = append(nodes[*parent].Children, nodes[s])
	}

	p := &plan.Plan{BaseName: baseName, ColNames: colNames}
	if len(topLevel) < len(required) || len(required) == 1 {
		// Containment exists somewhere: the commercial plan exploits shared
		// sorts, i.e. each maximal set is computed from R and subsumed sets
		// stream off their supersets (the CONT behaviour of §6.1).
		for _, s := range topLevel {
			p.Roots = append(p.Roots, nodes[s])
		}
	} else {
		// No containment at all (the SC shape): materialize the union of all
		// requested columns once and compute everything from it.
		u := colset.UnionAll(required)
		root := plan.NewNode(u, nodes[u] != nil && nodes[u].Required)
		for _, s := range topLevel {
			root.Children = append(root.Children, nodes[s])
		}
		p.Roots = []*plan.Node{root}
	}
	p.Normalize()
	return p
}

// smallestSuperset returns the smallest required proper superset of s, nil
// when none exists. Ties break toward the lexicographically smallest set so
// the emulated plan is deterministic.
func smallestSuperset(s colset.Set, required []colset.Set) *colset.Set {
	var best *colset.Set
	for i := range required {
		r := required[i]
		if !s.ProperSubsetOf(r) {
			continue
		}
		if best == nil || r.Len() < best.Len() || (r.Len() == best.Len() && r < *best) {
			best = &required[i]
		}
	}
	return best
}
