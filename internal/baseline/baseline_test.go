package baseline

import (
	"testing"

	"gbmqo/internal/colset"
	"gbmqo/internal/plan"
)

func TestNaiveShape(t *testing.T) {
	req := []colset.Set{colset.Of(0), colset.Of(1), colset.Of(2)}
	p := Naive("R", nil, req)
	if len(p.Roots) != 3 {
		t.Fatalf("naive roots = %d", len(p.Roots))
	}
	if err := p.Validate(req); err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Roots {
		if r.IsIntermediate() {
			t.Fatal("naive plan materialized something")
		}
	}
}

func TestGroupingSetsSCShape(t *testing.T) {
	// Non-overlapping singles (the SC scenario): one materialized union root
	// with every query under it — the plan the paper observed commercially.
	req := []colset.Set{colset.Of(0), colset.Of(1), colset.Of(2), colset.Of(3)}
	p := GroupingSets("R", nil, req)
	if err := p.Validate(req); err != nil {
		t.Fatal(err)
	}
	if len(p.Roots) != 1 {
		t.Fatalf("SC shape should have one root, got %d", len(p.Roots))
	}
	root := p.Roots[0]
	if root.Set != colset.Of(0, 1, 2, 3) || root.Required {
		t.Fatalf("root = %v required=%v", root.Set, root.Required)
	}
	if len(root.Children) != 4 {
		t.Fatalf("root children = %d", len(root.Children))
	}
}

func TestGroupingSetsCONTShape(t *testing.T) {
	// Containment-rich input: maximal pairs from R, singles streamed from
	// their smallest superset.
	req := []colset.Set{
		colset.Of(0), colset.Of(1), colset.Of(2),
		colset.Of(0, 1), colset.Of(0, 2), colset.Of(1, 2),
	}
	p := GroupingSets("R", nil, req)
	if err := p.Validate(req); err != nil {
		t.Fatal(err)
	}
	if len(p.Roots) != 3 {
		t.Fatalf("CONT shape should have the 3 pairs as roots:\n%s", p)
	}
	for _, r := range p.Roots {
		if r.Set.Len() != 2 {
			t.Fatalf("root %v is not a pair", r.Set)
		}
	}
	// Every single hangs under some pair.
	found := 0
	for _, r := range p.Roots {
		r.Walk(func(n *plan.Node) {
			if n.Set.Len() == 1 {
				found++
			}
		})
	}
	if found != 3 {
		t.Fatalf("%d singles placed under pairs, want 3", found)
	}
}

func TestGroupingSetsChain(t *testing.T) {
	// (a) ⊂ (a,b) ⊂ (a,b,c): a single chain from R.
	req := []colset.Set{colset.Of(0), colset.Of(0, 1), colset.Of(0, 1, 2)}
	p := GroupingSets("R", nil, req)
	if err := p.Validate(req); err != nil {
		t.Fatal(err)
	}
	if len(p.Roots) != 1 || p.Roots[0].Set != colset.Of(0, 1, 2) {
		t.Fatalf("chain root wrong:\n%s", p)
	}
	mid := p.Roots[0].Children
	if len(mid) != 1 || mid[0].Set != colset.Of(0, 1) || len(mid[0].Children) != 1 {
		t.Fatalf("chain structure wrong:\n%s", p)
	}
}

func TestGroupingSetsSingleQuery(t *testing.T) {
	req := []colset.Set{colset.Of(0, 1)}
	p := GroupingSets("R", nil, req)
	if err := p.Validate(req); err != nil {
		t.Fatal(err)
	}
	if len(p.Roots) != 1 || p.Roots[0].IsIntermediate() {
		t.Fatalf("single query should be computed directly:\n%s", p)
	}
}

func TestSmallestSupersetTieBreak(t *testing.T) {
	req := []colset.Set{colset.Of(0), colset.Of(0, 1), colset.Of(0, 2)}
	got := smallestSuperset(colset.Of(0), req)
	if got == nil || *got != colset.Of(0, 1) {
		t.Fatalf("tie-break = %v, want (0,1)", got)
	}
	if s := smallestSuperset(colset.Of(0, 1), req); s != nil {
		t.Fatalf("superset of maximal set = %v", *s)
	}
}
