package gbmqo

import (
	"context"
	"errors"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"
)

// durableDefs is the schema every durable test table uses: one low-cardinality
// group key per type plus a float measure, with periodic nulls.
var durableDefs = []ColumnDef{
	{Name: "k", Typ: Int64},
	{Name: "s", Typ: String},
	{Name: "f", Typ: Float64},
	{Name: "d", Typ: Date},
}

func durableRows(start, n int) [][]Value {
	rows := make([][]Value, 0, n)
	for i := start; i < start+n; i++ {
		row := []Value{
			IntVal(int64(i % 7)),
			StrVal("grp" + strconv.Itoa(i%5)),
			FloatVal(float64(i) * 0.5),
			DateVal(int64(9500 + i%30)),
		}
		if i%11 == 0 {
			row[1] = NullVal(String)
		}
		rows = append(rows, row)
	}
	return rows
}

// tableBytes fingerprints a table's full logical content: column names plus
// the packed row-major code image. Byte-identical recovery means equal hashes.
func tableBytes(t *testing.T, tb *Table) uint64 {
	t.Helper()
	h := fnv.New64a()
	for _, name := range tb.ColNames() {
		h.Write([]byte(name))
		h.Write([]byte{0})
	}
	img, _ := tb.RowImage()
	h.Write(img)
	return h.Sum64()
}

func openDurableEvents(t *testing.T, dir string, dopts *DurabilityOptions) (*DB, *RecoveryReport) {
	t.Helper()
	db, rep, err := OpenDurable(dir, nil, dopts)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return db, rep
}

func mustClose(t *testing.T, db *DB) {
	t.Helper()
	if err := db.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()

	db, rep := openDurableEvents(t, dir, &DurabilityOptions{SnapshotInterval: -1})
	if rep.SnapshotLoaded || rep.ReplayedRecords != 0 || rep.TablesRestored != 0 {
		t.Fatalf("fresh-dir recovery not empty: %+v", rep)
	}
	tb := NewTable("events", durableDefs)
	for _, row := range durableRows(0, 500) {
		tb.AppendRow(row...)
	}
	db.Register(tb)
	for i := 0; i < 3; i++ {
		if _, err := db.Append("events", durableRows(500+i*100, 100)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	live, _ := db.Table("events")
	want := tableBytes(t, live)
	res, err := db.Query(`SELECT k, COUNT(*) FROM events GROUP BY k`)
	if err != nil {
		t.Fatal(err)
	}
	wantQuery := tableBytes(t, res)
	mustClose(t, db)

	db2, rep2 := openDurableEvents(t, dir, &DurabilityOptions{SnapshotInterval: -1})
	defer mustClose(t, db2)
	if !rep2.SnapshotLoaded || rep2.TablesRestored != 1 {
		t.Fatalf("recovery report: %+v", rep2)
	}
	// Close snapshots synchronously, so the WAL horizon is fully covered.
	if rep2.ReplayedRecords != 0 {
		t.Fatalf("replayed %d records past a close-time snapshot", rep2.ReplayedRecords)
	}
	got, ok := db2.Table("events")
	if !ok || got.NumRows() != 800 {
		t.Fatalf("recovered table: ok=%v rows=%d", ok, got.NumRows())
	}
	if tableBytes(t, got) != want {
		t.Fatal("recovered table is not byte-identical")
	}
	res2, err := db2.Query(`SELECT k, COUNT(*) FROM events GROUP BY k`)
	if err != nil {
		t.Fatal(err)
	}
	if tableBytes(t, res2) != wantQuery {
		t.Fatal("recovered query result is not byte-identical")
	}
}

// TestDurableReplayWithoutClose simulates a crash: the first process never
// closes, so recovery must replay every acknowledged append from the WAL on
// top of the registration-time snapshot.
func TestDurableReplayWithoutClose(t *testing.T) {
	dir := t.TempDir()

	db, _ := openDurableEvents(t, dir, &DurabilityOptions{SnapshotInterval: -1})
	tb := NewTable("events", durableDefs)
	for _, row := range durableRows(0, 200) {
		tb.AppendRow(row...)
	}
	db.Register(tb)
	for i := 0; i < 4; i++ {
		if _, err := db.Append("events", durableRows(200+i*50, 50)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	live, _ := db.Table("events")
	want := tableBytes(t, live)
	// No Close: the WAL tail past the registration snapshot is the only
	// durable copy of the four appends (fsync=always acknowledged them).

	db2, rep := openDurableEvents(t, dir, &DurabilityOptions{SnapshotInterval: -1})
	defer mustClose(t, db2)
	if !rep.SnapshotLoaded {
		t.Fatalf("registration snapshot not found: %+v", rep)
	}
	if rep.ReplayedRecords != 4 {
		t.Fatalf("replayed %d records, want 4 (%+v)", rep.ReplayedRecords, rep)
	}
	got, ok := db2.Table("events")
	if !ok || got.NumRows() != 400 {
		t.Fatalf("recovered table: ok=%v rows=%d", ok, got.NumRows())
	}
	if tableBytes(t, got) != want {
		t.Fatal("replayed table is not byte-identical to the crashed process's view")
	}
	if info, ok := db2.RecoveryInfo(); !ok || info.ReplayedRecords != 4 {
		t.Fatalf("RecoveryInfo = %+v, %v", info, ok)
	}
}

func TestDurableTornTailTruncated(t *testing.T) {
	dir := t.TempDir()

	db, _ := openDurableEvents(t, dir, &DurabilityOptions{SnapshotInterval: -1})
	tb := NewTable("events", durableDefs)
	for _, row := range durableRows(0, 100) {
		tb.AppendRow(row...)
	}
	db.Register(tb)
	if _, err := db.Append("events", durableRows(100, 50)); err != nil {
		t.Fatal(err)
	}
	live, _ := db.Table("events")
	want := tableBytes(t, live)
	// Crash mid-write: garbage half-frame at the tail of the newest segment.
	segs, err := filepath.Glob(filepath.Join(dir, walSubdir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("wal segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x13, 0x37, 0x00, 0xff, 0xab})
	f.Close()

	db2, rep := openDurableEvents(t, dir, &DurabilityOptions{SnapshotInterval: -1})
	defer mustClose(t, db2)
	if rep.TruncatedTails != 1 {
		t.Fatalf("TruncatedTails = %d, want 1 (%+v)", rep.TruncatedTails, rep)
	}
	if rep.ReplayedRecords != 1 {
		t.Fatalf("ReplayedRecords = %d, want 1", rep.ReplayedRecords)
	}
	got, _ := db2.Table("events")
	if tableBytes(t, got) != want {
		t.Fatal("recovery after torn tail is not byte-identical")
	}
	// Appends must keep working on the repaired log.
	if _, err := db2.Append("events", durableRows(150, 10)); err != nil {
		t.Fatalf("append after torn-tail repair: %v", err)
	}
}

func TestDurableCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	db, _ := openDurableEvents(t, dir, &DurabilityOptions{SnapshotInterval: -1})
	tb := NewTable("events", durableDefs)
	for _, row := range durableRows(0, 50) {
		tb.AppendRow(row...)
	}
	db.Register(tb)

	for i := 0; i < 3; i++ {
		if err := db.Close(context.Background()); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	if _, err := db.Append("events", durableRows(50, 10)); !errors.Is(err, ErrDBClosed) {
		t.Fatalf("Append after Close = %v, want ErrDBClosed", err)
	}
}

// TestDurableCloseConcurrentAppend races Close against in-flight appends
// (satellite fix): every append must either fully commit — and then survive
// recovery — or fail with ErrDBClosed. Nothing may tear or deadlock.
func TestDurableCloseConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	db, _ := openDurableEvents(t, dir, &DurabilityOptions{SnapshotInterval: -1})
	tb := NewTable("events", durableDefs)
	for _, row := range durableRows(0, 100) {
		tb.AppendRow(row...)
	}
	db.Register(tb)

	const (
		writers = 4
		batches = 8
		per     = 10
	)
	var (
		wg        sync.WaitGroup
		committed sync.Map // batch id -> true
	)
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for b := 0; b < batches; b++ {
				id := w*batches + b
				_, err := db.Append("events", durableRows(100+id*per, per))
				switch {
				case err == nil:
					committed.Store(id, true)
				case errors.Is(err, ErrDBClosed):
					return
				default:
					t.Errorf("append %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(2 * time.Millisecond) // let some appends land before closing
	if err := db.Close(context.Background()); err != nil {
		t.Fatalf("Close during appends: %v", err)
	}
	wg.Wait()

	n := 0
	committed.Range(func(_, _ any) bool { n++; return true })

	db2, _ := openDurableEvents(t, dir, &DurabilityOptions{SnapshotInterval: -1})
	defer mustClose(t, db2)
	got, ok := db2.Table("events")
	if !ok {
		t.Fatal("events missing after recovery")
	}
	if want := 100 + n*per; got.NumRows() != want {
		t.Fatalf("recovered %d rows, want %d (%d committed batches)", got.NumRows(), want, n)
	}
}

// TestPlainCloseIdempotent covers the non-durable path of the same fix:
// Close after Drain stays safe and repeatable with no data dir attached.
func TestPlainCloseIdempotent(t *testing.T) {
	db := Open(nil)
	db.StartBatching(BatchOptions{MaxWait: time.Millisecond})
	if err := db.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := db.Close(context.Background()); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
}

func durableCacheSetup(t *testing.T, dir string) (queriesHash uint64) {
	t.Helper()
	db, _, err := OpenDurable(dir, &Config{CacheBytes: 32 << 20}, &DurabilityOptions{SnapshotInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTable("events", durableDefs)
	for _, row := range durableRows(0, 1500) {
		tb.AppendRow(row...)
	}
	db.Register(tb)
	queries := [][]string{{"k"}, {"s"}, {"k", "s"}}
	// Two runs: admit, then touch so entries carry demand weight.
	for i := 0; i < 2; i++ {
		if _, _, err := db.Execute("events", queries, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := db.CacheStats()
	if !ok || st.Entries == 0 {
		t.Fatalf("cache not populated: %+v, %v", st, ok)
	}
	mustClose(t, db)
	return 0
}

func TestDurableCacheRewarm(t *testing.T) {
	dir := t.TempDir()
	durableCacheSetup(t, dir)

	db, rep, err := OpenDurable(dir, &Config{CacheBytes: 32 << 20}, &DurabilityOptions{SnapshotInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, db)
	if rep.RewarmedEntries == 0 {
		t.Fatalf("no cache entries rewarmed: %+v", rep)
	}
	if rep.QuarantinedEntries != 0 || rep.ManifestDiscarded {
		t.Fatalf("clean rewarm reported corruption: %+v", rep)
	}
	_, warm, err := db.Execute("events", [][]string{{"k"}, {"s"}, {"k", "s"}}, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.Hits != 3 {
		t.Fatalf("rewarmed cache served %d of 3 hits: %+v", warm.Cache.Hits, warm.Cache)
	}
	if warm.RowsScanned != 0 {
		t.Fatalf("rewarmed run scanned %d rows", warm.RowsScanned)
	}
}

// TestDurableManifestEntryQuarantined tampers one manifest entry's checksum
// while keeping the file-level CRC valid: recovery must recompute, notice the
// contradiction, and push that key into the quarantine path instead of
// serving it.
func TestDurableManifestEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	durableCacheSetup(t, dir)

	path := filepath.Join(dir, manifestFile)
	entries, ok, corrupt := readManifest(path)
	if !ok || corrupt || len(entries) == 0 {
		t.Fatalf("manifest read: ok=%v corrupt=%v entries=%d", ok, corrupt, len(entries))
	}
	entries[0].Sum = "00000000deadbeef"
	if err := writeManifest(path, entries); err != nil {
		t.Fatal(err)
	}

	db, rep, err := OpenDurable(dir, &Config{CacheBytes: 32 << 20}, &DurabilityOptions{SnapshotInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, db)
	if rep.QuarantinedEntries != 1 {
		t.Fatalf("QuarantinedEntries = %d, want 1 (%+v)", rep.QuarantinedEntries, rep)
	}
	if rep.ManifestDiscarded {
		t.Fatalf("entry-level corruption discarded the whole manifest: %+v", rep)
	}
	if rep.RewarmedEntries != len(entries)-1 {
		t.Fatalf("RewarmedEntries = %d, want %d", rep.RewarmedEntries, len(entries)-1)
	}
	st, _ := db.CacheStats()
	if st.Corruptions == 0 {
		t.Fatalf("quarantine not recorded in cache stats: %+v", st)
	}
}

// TestDurableManifestFileCorruption flips raw manifest bytes: the file-level
// CRC must reject the whole manifest, and recovery proceeds cold-cache.
func TestDurableManifestFileCorruption(t *testing.T) {
	dir := t.TempDir()
	durableCacheSetup(t, dir)

	path := filepath.Join(dir, manifestFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x5a
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	db, rep, err := OpenDurable(dir, &Config{CacheBytes: 32 << 20}, &DurabilityOptions{SnapshotInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, db)
	if !rep.ManifestDiscarded {
		t.Fatalf("corrupt manifest not discarded: %+v", rep)
	}
	if rep.RewarmedEntries != 0 || rep.QuarantinedEntries != 0 {
		t.Fatalf("discarded manifest still rewarmed entries: %+v", rep)
	}
	// Table recovery is unaffected by a bad manifest.
	if tb, ok := db.Table("events"); !ok || tb.NumRows() != 1500 {
		t.Fatalf("table recovery failed alongside manifest discard")
	}
}

func TestDurableFsyncPolicies(t *testing.T) {
	for _, policy := range []string{FsyncAlways, FsyncInterval, FsyncOff} {
		t.Run(policy, func(t *testing.T) {
			dir := t.TempDir()
			db, _, err := OpenDurable(dir, nil, &DurabilityOptions{
				Fsync: policy, FsyncInterval: time.Millisecond, SnapshotInterval: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			tb := NewTable("events", durableDefs)
			for _, row := range durableRows(0, 100) {
				tb.AppendRow(row...)
			}
			db.Register(tb)
			if _, err := db.Append("events", durableRows(100, 20)); err != nil {
				t.Fatal(err)
			}
			mustClose(t, db)

			db2, _ := openDurableEvents(t, dir, &DurabilityOptions{SnapshotInterval: -1})
			defer mustClose(t, db2)
			if tb2, ok := db2.Table("events"); !ok || tb2.NumRows() != 120 {
				t.Fatalf("policy %s: recovery lost rows", policy)
			}
		})
	}
}

func TestDurableMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	db, _ := openDurableEvents(t, dir, &DurabilityOptions{SnapshotInterval: -1})
	defer mustClose(t, db)
	tb := NewTable("events", durableDefs)
	for _, row := range durableRows(0, 50) {
		tb.AppendRow(row...)
	}
	db.Register(tb)
	if _, err := db.Append("events", durableRows(50, 10)); err != nil {
		t.Fatal(err)
	}

	metrics := db.Metrics()
	for _, series := range []string{
		"gbmqo_wal_appends_total", "gbmqo_wal_fsyncs_total", "gbmqo_wal_bytes_total",
		"gbmqo_wal_replayed_records_total", "gbmqo_wal_truncated_tails_total",
		"gbmqo_snapshot_writes_total", "gbmqo_snapshot_age_seconds",
	} {
		if _, ok := metrics[series]; !ok {
			t.Fatalf("metrics output missing %s: %v", series, metrics)
		}
	}
	if metrics["gbmqo_wal_appends_total"] == 0 {
		t.Fatalf("wal appends counter stayed zero: %v", metrics)
	}
	sections := db.HealthSections()
	detail, ok := sections["durability"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing durability section: %v", sections)
	}
	if detail["fsync_policy"] != FsyncAlways {
		t.Fatalf("durability detail: %v", detail)
	}
}

// TestDurableFallbackSnapshotUsable: snapshot retention keeps an older
// snapshot so recovery can fall back when the newest is corrupt — which only
// works if WAL pruning spares every record past the OLDEST retained horizon.
// Pruning to the newest horizon would leave the fallback with a replay gap and
// recovery would fail its ExpectRows verification permanently.
func TestDurableFallbackSnapshotUsable(t *testing.T) {
	dir := t.TempDir()
	// Tiny WAL segments so pruning actually has non-active segments to delete.
	db, _ := openDurableEvents(t, dir, &DurabilityOptions{SnapshotInterval: -1, WALSegmentBytes: 256})
	tb := NewTable("events", durableDefs)
	for _, row := range durableRows(0, 50) {
		tb.AppendRow(row...)
	}
	db.Register(tb) // snapshot 1: WAL horizon 0
	for i := 0; i < 5; i++ {
		if _, err := db.Append("events", durableRows(50+i*50, 50)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	live, _ := db.Table("events")
	want := tableBytes(t, live)
	mustClose(t, db) // snapshot 2 (newest): full horizon; prune runs here

	// Corrupt the newest snapshot; recovery must fall back to the
	// registration-time snapshot and replay the entire WAL suffix past it.
	snaps, err := filepath.Glob(filepath.Join(dir, snapSubdir, "snap-*.gbs"))
	if err != nil || len(snaps) < 2 {
		t.Fatalf("retained snapshots: %v (err=%v), want >= 2", snaps, err)
	}
	newest := snaps[len(snaps)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, rep := openDurableEvents(t, dir, &DurabilityOptions{SnapshotInterval: -1})
	defer mustClose(t, db2)
	if !rep.SnapshotLoaded {
		t.Fatalf("fallback snapshot not loaded: %+v", rep)
	}
	if rep.ReplayedRecords != 5 {
		t.Fatalf("replayed %d records via fallback, want 5 (%+v)", rep.ReplayedRecords, rep)
	}
	got, ok := db2.Table("events")
	if !ok || got.NumRows() != 300 {
		t.Fatalf("recovered table: ok=%v rows=%d", ok, got.NumRows())
	}
	if tableBytes(t, got) != want {
		t.Fatal("fallback recovery is not byte-identical")
	}
}

// TestRegisterDurableSurfacesSnapshotFailure: a durable registration whose
// snapshot cannot be written must return the error (the table would be lost
// on crash), while still registering the table in memory.
func TestRegisterDurableSurfacesSnapshotFailure(t *testing.T) {
	dir := t.TempDir()
	db, _ := openDurableEvents(t, dir, &DurabilityOptions{SnapshotInterval: -1})
	defer db.Close(context.Background()) // close-time snapshot fails too; ignore
	// Sabotage the snapshot directory: a regular file where it must go.
	if err := os.WriteFile(filepath.Join(dir, snapSubdir), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	tb := NewTable("events", durableDefs)
	for _, row := range durableRows(0, 10) {
		tb.AppendRow(row...)
	}
	if err := db.RegisterDurable(tb); err == nil {
		t.Fatal("RegisterDurable reported success with an unwritable snapshot dir")
	}
	if _, ok := db.Table("events"); !ok {
		t.Fatal("table missing from in-memory catalog after failed durable registration")
	}
}
