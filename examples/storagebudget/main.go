// Storage-constrained optimization (§4.4): GB-MQO plans materialize temp
// tables; this example shows (a) the §4.4.1 storage-minimizing execution
// order bounding peak temp usage, and (b) the §4.4.2 budget constraint
// trading speed for space — as the allowed intermediate storage shrinks, the
// optimizer gives up merges until, at a tiny budget, the plan degenerates to
// naive. It also shows the §7.2 per-query aggregates through the public API.
package main

import (
	"fmt"
	"log"

	"gbmqo"
)

func main() {
	db := gbmqo.Open(nil)
	li, err := gbmqo.GenerateDataset("lineitem", 60_000, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	db.Register(li)

	queries := [][]string{
		{"l_quantity"}, {"l_returnflag"}, {"l_linestatus"}, {"l_shipinstruct"},
		{"l_shipmode"}, {"l_shipdate"}, {"l_commitdate"}, {"l_receiptdate"},
	}

	fmt.Printf("%14s %14s %10s %16s\n", "budget (bytes)", "exec time", "temps", "peak temp bytes")
	for _, budget := range []float64{0 /* unlimited */, 200_000, 20_000, 100, 10} {
		p, rep, err := db.Execute("lineitem", queries, gbmqo.QueryOptions{StorageBudget: budget})
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%.0f", budget)
		if budget == 0 {
			label = "unlimited"
		}
		fmt.Printf("%14s %14s %10d %16.0f\n", label, rep.Wall, rep.TempTables, rep.PeakTempBytes)
		if budget > 0 && rep.PeakTempBytes > budget {
			log.Fatalf("budget %.0f violated: peak %.0f, plan:\n%s", budget, rep.PeakTempBytes, p)
		}
		if budget == 10 && rep.TempTables != 0 {
			log.Fatalf("a sub-materialization budget should force the naive plan, got:\n%s", p)
		}
	}

	// §7.2: per-query aggregates — the optimizer still shares work, with
	// intermediates carrying the union of what their descendants need.
	plan, rep, err := db.ExecuteQueries("lineitem", []gbmqo.GroupQuery{
		{Cols: []string{"l_returnflag"}, Aggs: []gbmqo.Agg{
			gbmqo.CountStar(),
			{Kind: gbmqo.AggSum, Col: li.ColIndex("l_quantity"), Name: "total_qty"},
		}},
		{Cols: []string{"l_linestatus"}, Aggs: []gbmqo.Agg{
			{Kind: gbmqo.AggMin, Col: li.ColIndex("l_shipdate"), Name: "first_ship"},
			{Kind: gbmqo.AggMax, Col: li.ColIndex("l_shipdate"), Name: "last_ship"},
		}},
		{Cols: []string{"l_returnflag", "l_linestatus"}}, // plain COUNT(*)
	}, gbmqo.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-query aggregates (§7.2) — plan:\n%s\n", plan)
	for set, res := range rep.Results {
		fmt.Printf("result %v:\n%s\n", set, res.FormatRows(4))
	}
}
