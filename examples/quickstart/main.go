// Quickstart: generate a dataset, ask for several Group By distributions at
// once, and watch GB-MQO decide which extra Group Bys to materialize so the
// whole batch runs faster than issuing the queries one by one.
package main

import (
	"fmt"
	"log"

	"gbmqo"
)

func main() {
	db := gbmqo.Open(nil)

	// A TPC-H-like lineitem table (use db.RegisterCSV for your own data).
	lineitem, err := gbmqo.GenerateDataset("lineitem", 60_000, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	db.Register(lineitem)

	// The paper's motivating workload: one frequency distribution per column.
	queries := [][]string{
		{"l_returnflag"}, {"l_linestatus"}, {"l_shipmode"}, {"l_shipinstruct"},
		{"l_quantity"}, {"l_shipdate"}, {"l_commitdate"}, {"l_receiptdate"},
	}

	// Optimize only: inspect the logical plan GB-MQO chose.
	plan, stats, err := db.Optimize("lineitem", queries, gbmqo.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GB-MQO plan (estimated cost %.0f, naive %.0f, %d optimizer calls):\n\n%s\n",
		stats.FinalCost, stats.NaiveCost, stats.OptimizerCalls, plan)

	// The equivalent client-side SQL script (§5.2 of the paper).
	script, err := db.ExplainSQL(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("client-side SQL script:")
	for _, stmt := range script {
		fmt.Println(" ", stmt)
	}

	// Execute and compare against the naive strategy.
	_, optimized, err := db.Execute("lineitem", queries, gbmqo.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	_, naive, err := db.Execute("lineitem", queries, gbmqo.QueryOptions{Strategy: gbmqo.Naive})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive:  %8d rows scanned, %v\n", naive.RowsScanned, naive.Wall)
	fmt.Printf("gbmqo:  %8d rows scanned, %v  (%d temp tables, peak %.0f temp bytes)\n",
		optimized.RowsScanned, optimized.Wall, optimized.TempTables, optimized.PeakTempBytes)

	// Each requested distribution is available per grouping set.
	flag := optimized.Results[gbmqo.Cols(lineitem.ColIndex("l_returnflag"))]
	fmt.Println("\nl_returnflag distribution:")
	fmt.Println(flag.FormatRows(-1))
}
