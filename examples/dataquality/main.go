// Data-quality analysis — the scenario that motivates the paper (§1): a
// analyst profiles a Customer relation by computing the value distribution of
// every column, checking NULL rates, validating domain expectations (at most
// 50 US states), and testing whether (LastName, FirstName, MI, Zip) is a key.
// All the single-column distributions are computed as ONE multi-group-by
// request that GB-MQO optimizes jointly.
package main

import (
	"fmt"
	"log"

	"gbmqo"
)

func main() {
	db := gbmqo.Open(nil)
	customers, err := gbmqo.GenerateDataset("customer", 60_000, 7, 0)
	if err != nil {
		log.Fatal(err)
	}
	db.Register(customers)

	// One Group By per column, shared through GB-MQO.
	report, err := db.Profile("customer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	fmt.Printf("plan used:\n%s\n", report.Plan)

	// Domain checks the paper calls out.
	for _, col := range report.Columns {
		switch col.Name {
		case "State":
			if col.Distinct > 50 {
				fmt.Printf("⚠ State has %d distinct values (> 50): data-quality problem "+
					"(dirty values like 'CALIFORNIA', 'N.Y.', ...)\n", col.Distinct)
			}
		case "Gender":
			if col.NullFraction > 0 {
				fmt.Printf("⚠ Gender is NULL in %.2f%% of rows\n", col.NullFraction*100)
			}
		case "Country":
			if col.Distinct > 1 {
				fmt.Printf("⚠ Country has %d spellings; expected one\n", col.Distinct)
			}
		}
	}

	// Almost-key check: "the analyst may expect that (LastName, FirstName,
	// M.I., Zip) is a key (or almost a key) for that relation".
	distinct, rows, err := db.AlmostKey("customer", []string{"LastName", "FirstName", "MI", "Zip"})
	if err != nil {
		log.Fatal(err)
	}
	dups := rows - distinct
	fmt.Printf("\n(LastName, FirstName, MI, Zip): %d combinations over %d rows", distinct, rows)
	if dups == 0 {
		fmt.Println(" — exact key")
	} else {
		fmt.Printf(" — almost a key (%d duplicate rows to investigate)\n", dups)
	}
}
