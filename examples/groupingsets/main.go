// GROUPING SETS through the SQL surface: the same statement executed with the
// naive strategy, the commercial-style GROUPING SETS plan, and GB-MQO —
// plus CUBE, ROLLUP and the COMBI extension, and a GROUPING SETS query over a
// join with the §5.1.1 group-by pushdown.
package main

import (
	"fmt"
	"log"

	"gbmqo"
)

func main() {
	db := gbmqo.Open(nil)
	sales, err := gbmqo.GenerateDataset("sales", 60_000, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	db.Register(sales)

	const query = `
		SELECT store_region, product_category, channel, COUNT(*)
		FROM sales
		GROUP BY GROUPING SETS (
			(store_region), (product_category), (channel),
			(store_region, product_category),
			(store_region, channel)
		)`

	for _, s := range []struct {
		name     string
		strategy gbmqo.Strategy
	}{
		{"naive", gbmqo.Naive},
		{"grouping-sets (commercial emulation)", gbmqo.GroupingSets},
		{"gb-mqo", gbmqo.GBMQO},
	} {
		res, err := db.QueryWith(query, gbmqo.QueryOptions{Strategy: s.strategy})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s: %d result rows\n", s.name, res.Table.NumRows())
		if res.Plan != nil {
			fmt.Println(res.Plan)
		}
	}

	// The GROUPING SETS output shape: union of grouping columns + grp_tag.
	res, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result sample (note NULLs for absent grouping columns and the grp_tag):")
	fmt.Println(res.FormatRows(8))

	// CUBE and ROLLUP, including the SQL grand-total row.
	cube, err := db.Query(`SELECT promo_flag, channel, COUNT(*) FROM sales GROUP BY CUBE(promo_flag, channel)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CUBE(promo_flag, channel): %d rows (4 grouping sets incl. grand total)\n\n", cube.NumRows())

	// COMBI(k; …) — the §2 syntactic extension for data-analysis workloads:
	// every subset of the listed columns up to size k.
	combi, err := db.Query(`SELECT COUNT(*) FROM sales GROUP BY COMBI(2; store_region, channel, payment, promo_flag)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COMBI(2; 4 columns) computed %d result rows across 10 grouping sets\n\n", combi.NumRows())

	// GROUPING SETS over a join (§5.1.1): group-by pushed below the join with
	// counts recombined afterwards.
	stores := gbmqo.NewTable("stores", []gbmqo.ColumnDef{
		{Name: "store_id2", Typ: gbmqo.Int64},
		{Name: "tier", Typ: gbmqo.String},
	})
	for i := 0; i < 600; i++ {
		tier := "SILVER"
		if i%3 == 0 {
			tier = "GOLD"
		}
		stores.AppendRow(gbmqo.IntVal(int64(i)), gbmqo.StrVal(tier))
	}
	db.Register(stores)
	joined, err := db.Query(`
		SELECT store_region, channel, COUNT(*)
		FROM sales JOIN stores ON store_id = store_id2
		GROUP BY GROUPING SETS ((store_region), (channel))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GROUPING SETS over Join(sales, stores) with group-by pushdown:")
	fmt.Println(joined.FormatRows(6))
}
