// Skew study (§6.8): as Zipfian skew grows, columns get sparser (fewer
// effective distinct values), merging Group Bys becomes more attractive, and
// GB-MQO's advantage over the naive plan widens. This example also shows the
// plans adapting: compare which intermediates get materialized at z=0 vs z=2.
package main

import (
	"fmt"
	"log"

	"gbmqo"
)

func main() {
	queries := [][]string{
		{"l_partkey"}, {"l_suppkey"}, {"l_quantity"}, {"l_returnflag"},
		{"l_linestatus"}, {"l_shipdate"}, {"l_commitdate"}, {"l_receiptdate"},
		{"l_shipinstruct"}, {"l_shipmode"},
	}
	fmt.Printf("%6s %14s %14s %9s %11s %12s\n", "zipf", "naive", "gb-mqo", "speedup", "work ratio", "temps")
	var plans []string
	for _, z := range []float64{0, 1, 2, 3} {
		db := gbmqo.Open(nil)
		li, err := gbmqo.GenerateDataset("lineitem", 60_000, 1, z)
		if err != nil {
			log.Fatal(err)
		}
		db.Register(li)
		p, opt, err := db.Execute("lineitem", queries, gbmqo.QueryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		_, naive, err := db.Execute("lineitem", queries, gbmqo.QueryOptions{Strategy: gbmqo.Naive})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.1f %14s %14s %8.2fx %10.2fx %12d\n",
			z, naive.Wall, opt.Wall, float64(naive.Wall)/float64(opt.Wall),
			float64(naive.RowsScanned)/float64(opt.RowsScanned), opt.TempTables)
		if z == 0 || z == 2 {
			plans = append(plans, fmt.Sprintf("plan at z=%.0f:\n%s", z, p))
		}
	}
	fmt.Println()
	for _, p := range plans {
		fmt.Println(p)
	}
}
